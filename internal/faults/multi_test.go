package faults

import (
	"testing"
	"testing/quick"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

// TestMultiEffectSingleAgreesWithEffect: with one fault, MultiEffect
// must reproduce Effect exactly.
func TestMultiEffectSingleAgreesWithEffect(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 35, SegmentControls: true})
		opts := Options{Combine: CombineMax, SIBCoupling: true, CtrlCoupling: true}
		for _, f := range Universe(net) {
			o1, s1 := Effect(net, f, opts)
			o2, s2 := MultiEffect(net, []Fault{f}, opts)
			for i := range o1 {
				if o1[i] != o2[i] || s1[i] != s2[i] {
					t.Logf("seed %d fault %s node %d: single (%v,%v) multi (%v,%v)",
						seed, f.String(net), i, o1[i], s1[i], o2[i], s2[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiEffectMonotone: adding a second fault can only lose more.
func TestMultiEffectMonotone(t *testing.T) {
	net := fixture.PaperExample()
	opts := DefaultOptions()
	u := Universe(net)
	for i, f1 := range u {
		o1, s1 := MultiEffect(net, []Fault{f1}, opts)
		for _, f2 := range u[i+1:] {
			if f1.Node == f2.Node {
				continue
			}
			o2, s2 := MultiEffect(net, []Fault{f1, f2}, opts)
			for n := range o1 {
				if (o1[n] && !o2[n]) || (s1[n] && !s2[n]) {
					t.Fatalf("adding %s to %s recovered access at node %d",
						f2.String(net), f1.String(net), n)
				}
			}
		}
	}
}

func TestMultiEffectDoubleFault(t *testing.T) {
	// m0 stuck-at-0 keeps the upper branch; a break of c1 alone keeps
	// everything except c1's path... combining m0 stuck-at-0 with a
	// break of i1 leaves i2/i3 settable? i1 is upstream of them in the
	// selected branch: they lose settability; c0 keeps observability.
	net := fixture.PaperExample()
	fs := []Fault{
		{Kind: MuxStuck, Node: net.Lookup("m0"), Port: 0},
		{Kind: SegmentBreak, Node: net.Lookup("i1")},
	}
	obsLost, setLost := MultiEffect(net, fs, DefaultOptions())
	for _, name := range []string{"i2", "i3"} {
		id := net.Lookup(name)
		if !setLost[id] {
			t.Errorf("%s should lose settability (broken i1 upstream, branch forced)", name)
		}
		if obsLost[id] {
			t.Errorf("%s should stay observable", name)
		}
	}
	// i1 itself: both.
	if i1 := net.Lookup("i1"); !obsLost[i1] || !setLost[i1] {
		t.Error("i1 must lose both directions")
	}
}

func TestSampleMultiFaultStats(t *testing.T) {
	net := fixture.SIBChain(6)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	opts := DefaultOptions()

	one := SampleMultiFault(net, sp, opts, 1, 400, 7)
	two := SampleMultiFault(net, sp, opts, 2, 400, 7)
	if one.Samples != 400 || two.Samples != 400 {
		t.Fatalf("sample counts wrong: %d, %d", one.Samples, two.Samples)
	}
	if two.MeanDamage < one.MeanDamage {
		t.Errorf("two faults damage less than one on average: %v vs %v", two.MeanDamage, one.MeanDamage)
	}
	if two.MeanAccessible > one.MeanAccessible {
		t.Errorf("two faults leave more accessible than one: %v vs %v", two.MeanAccessible, one.MeanAccessible)
	}
	if one.MeanAccessible <= 0 || one.MeanAccessible > 1 {
		t.Errorf("MeanAccessible out of range: %v", one.MeanAccessible)
	}
}

func TestSampleMultiFaultRespectsHardening(t *testing.T) {
	net := fixture.SIBChain(5)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	opts := DefaultOptions()
	before := SampleMultiFault(net, sp, opts, 2, 300, 11)

	// Harden everything: no fault site remains, zero damage.
	net.Nodes(func(nd *rsn.Node) {
		if nd.IsPrimitive() {
			nd.Hardened = true
		}
	})
	after := SampleMultiFault(net, sp, opts, 2, 300, 11)
	if after.MeanDamage != 0 || after.WorstDamage != 0 {
		t.Errorf("fully hardened network still damaged: %+v", after)
	}
	if after.MeanAccessible != 1 {
		t.Errorf("fully hardened MeanAccessible = %v, want 1", after.MeanAccessible)
	}
	if before.MeanDamage == 0 {
		t.Error("unhardened baseline shows no damage; test is vacuous")
	}
}

func TestSampleMultiFaultDeterministic(t *testing.T) {
	net := fixture.NestedSIBs()
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	a := SampleMultiFault(net, sp, DefaultOptions(), 2, 200, 3)
	b := SampleMultiFault(net, sp, DefaultOptions(), 2, 200, 3)
	if a != b {
		t.Errorf("sampling not deterministic: %+v vs %+v", a, b)
	}
}
