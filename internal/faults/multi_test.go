package faults

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

// TestMultiEffectSingleAgreesWithEffect: with one fault, MultiEffect
// must reproduce Effect exactly.
func TestMultiEffectSingleAgreesWithEffect(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 35, SegmentControls: true})
		opts := Options{Combine: CombineMax, SIBCoupling: true, CtrlCoupling: true}
		for _, f := range Universe(net) {
			o1, s1 := Effect(net, f, opts)
			o2, s2 := MultiEffect(net, []Fault{f}, opts)
			for i := range o1 {
				if o1[i] != o2[i] || s1[i] != s2[i] {
					t.Logf("seed %d fault %s node %d: single (%v,%v) multi (%v,%v)",
						seed, f.String(net), i, o1[i], s1[i], o2[i], s2[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiEffectMonotone: adding a second fault can only lose more.
func TestMultiEffectMonotone(t *testing.T) {
	net := fixture.PaperExample()
	opts := DefaultOptions()
	u := Universe(net)
	for i, f1 := range u {
		o1, s1 := MultiEffect(net, []Fault{f1}, opts)
		for _, f2 := range u[i+1:] {
			if f1.Node == f2.Node {
				continue
			}
			o2, s2 := MultiEffect(net, []Fault{f1, f2}, opts)
			for n := range o1 {
				if (o1[n] && !o2[n]) || (s1[n] && !s2[n]) {
					t.Fatalf("adding %s to %s recovered access at node %d",
						f2.String(net), f1.String(net), n)
				}
			}
		}
	}
}

func TestMultiEffectDoubleFault(t *testing.T) {
	// m0 stuck-at-0 keeps the upper branch; a break of c1 alone keeps
	// everything except c1's path... combining m0 stuck-at-0 with a
	// break of i1 leaves i2/i3 settable? i1 is upstream of them in the
	// selected branch: they lose settability; c0 keeps observability.
	net := fixture.PaperExample()
	fs := []Fault{
		{Kind: MuxStuck, Node: net.Lookup("m0"), Port: 0},
		{Kind: SegmentBreak, Node: net.Lookup("i1")},
	}
	obsLost, setLost := MultiEffect(net, fs, DefaultOptions())
	for _, name := range []string{"i2", "i3"} {
		id := net.Lookup(name)
		if !setLost[id] {
			t.Errorf("%s should lose settability (broken i1 upstream, branch forced)", name)
		}
		if obsLost[id] {
			t.Errorf("%s should stay observable", name)
		}
	}
	// i1 itself: both.
	if i1 := net.Lookup("i1"); !obsLost[i1] || !setLost[i1] {
		t.Error("i1 must lose both directions")
	}
}

func TestSampleMultiFaultStats(t *testing.T) {
	net := fixture.SIBChain(6)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	opts := DefaultOptions()

	one := SampleMultiFault(net, sp, opts, 1, 400, 7)
	two := SampleMultiFault(net, sp, opts, 2, 400, 7)
	if one.Samples != 400 || two.Samples != 400 {
		t.Fatalf("sample counts wrong: %d, %d", one.Samples, two.Samples)
	}
	if two.MeanDamage < one.MeanDamage {
		t.Errorf("two faults damage less than one on average: %v vs %v", two.MeanDamage, one.MeanDamage)
	}
	if two.MeanAccessible > one.MeanAccessible {
		t.Errorf("two faults leave more accessible than one: %v vs %v", two.MeanAccessible, one.MeanAccessible)
	}
	if one.MeanAccessible <= 0 || one.MeanAccessible > 1 {
		t.Errorf("MeanAccessible out of range: %v", one.MeanAccessible)
	}
}

func TestSampleMultiFaultRespectsHardening(t *testing.T) {
	net := fixture.SIBChain(5)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	opts := DefaultOptions()
	before := SampleMultiFault(net, sp, opts, 2, 300, 11)

	// Harden everything: no fault site remains, zero damage.
	net.Nodes(func(nd *rsn.Node) {
		if nd.IsPrimitive() {
			nd.Hardened = true
		}
	})
	after := SampleMultiFault(net, sp, opts, 2, 300, 11)
	if after.MeanDamage != 0 || after.WorstDamage != 0 {
		t.Errorf("fully hardened network still damaged: %+v", after)
	}
	if after.MeanAccessible != 1 {
		t.Errorf("fully hardened MeanAccessible = %v, want 1", after.MeanAccessible)
	}
	if before.MeanDamage == 0 {
		t.Error("unhardened baseline shows no damage; test is vacuous")
	}
}

func TestSampleMultiFaultDeterministic(t *testing.T) {
	net := fixture.NestedSIBs()
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	a := SampleMultiFault(net, sp, DefaultOptions(), 2, 200, 3)
	b := SampleMultiFault(net, sp, DefaultOptions(), 2, 200, 3)
	if a != b {
		t.Errorf("sampling not deterministic: %+v vs %+v", a, b)
	}
}

// TestSampleSitesSkewedWeightsTerminate is the regression test for the
// rejection-sampling hang: with one site holding >99.9% of the weight
// mass and k == len(sites), the old redraw loop kept hitting the
// already-chosen heavy site essentially forever. Weight-removal
// sampling must finish in exactly k draws and cover every site.
func TestSampleSitesSkewedWeightsTerminate(t *testing.T) {
	b := rsn.NewBuilder("skewed")
	// ~1e12 : 1 weight skew: the heavy site holds all but 9e-12 of the
	// mass, so the old redraw loop needed ~1e12 iterations per remaining
	// draw — never terminating in practice.
	b.Segment("huge", 1<<40, &rsn.Instrument{Name: "huge", DamageObs: 1})
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("tiny%d", i)
		b.Segment(name, 1, &rsn.Instrument{Name: name, DamageObs: 1})
	}
	net := b.Finish()
	sp := spec.FromNetwork(net, spec.DefaultCostModel)

	sites := net.Primitives()
	weights := make([]int64, len(sites))
	var totalW int64
	for i, id := range sites {
		weights[i] = sp.Cost[id]
		totalW += weights[i]
	}
	if frac := float64(weights[0]) / float64(totalW); frac < 0.999 {
		t.Fatalf("fixture not skewed enough: heavy site holds %.4f of the mass", frac)
	}

	done := make(chan []Fault, 1)
	go func() {
		rng := rand.New(rand.NewSource(1))
		done <- sampleSites(rng, net, sites, weights, totalW, len(sites))
	}()
	var fs []Fault
	select {
	case fs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sampleSites did not terminate with skewed weights and k == len(sites)")
	}
	if len(fs) != len(sites) {
		t.Fatalf("drew %d faults, want %d", len(fs), len(sites))
	}
	seen := map[rsn.NodeID]bool{}
	for _, f := range fs {
		if seen[f.Node] {
			t.Fatalf("site %d drawn twice", f.Node)
		}
		seen[f.Node] = true
	}
	for _, id := range sites {
		if !seen[id] {
			t.Errorf("site %d never drawn although k == len(sites)", id)
		}
	}

	// End to end: the Monte-Carlo campaign over the same skewed network
	// must terminate and count every requested sample.
	st := SampleMultiFault(net, sp, DefaultOptions(), len(sites), 50, 1)
	if st.Samples != 50 {
		t.Errorf("Samples = %d, want 50", st.Samples)
	}
}

// TestSampleSitesZeroPredMux: a multiplexer with zero predecessors is
// degenerate but constructible via the builder (ForkAny closed with no
// branches). Sampling it must fall back to a SegmentBreak instead of
// panicking in rng.Intn(0).
func TestSampleSitesZeroPredMux(t *testing.T) {
	b := rsn.NewBuilder("zero-pred-mux")
	b.Segment("head", 2, &rsn.Instrument{Name: "head", DamageObs: 1, DamageSet: 1})
	bs := b.ForkAny("f0")
	mux := bs.Join("m0", rsn.External())
	b.Segment("tail", 2, &rsn.Instrument{Name: "tail", DamageObs: 1, DamageSet: 1})
	net := b.Finish()
	if n := len(net.Pred(mux)); n != 0 {
		t.Fatalf("fixture mux has %d predecessors, want 0", n)
	}
	sp := spec.FromNetwork(net, spec.DefaultCostModel)

	sites := net.Primitives()
	weights := make([]int64, len(sites))
	var totalW int64
	for i, id := range sites {
		weights[i] = sp.Cost[id]
		totalW += weights[i]
	}
	rng := rand.New(rand.NewSource(5))
	fs := sampleSites(rng, net, sites, weights, totalW, len(sites)) // must not panic
	var muxFault *Fault
	for i := range fs {
		if fs[i].Node == mux {
			muxFault = &fs[i]
		}
	}
	if muxFault == nil {
		t.Fatal("degenerate mux never sampled although k == len(sites)")
	}
	if muxFault.Kind != SegmentBreak {
		t.Errorf("zero-pred mux sampled as %v, want SegmentBreak fallback", muxFault.Kind)
	}
	if st := SampleMultiFault(net, sp, DefaultOptions(), len(sites), 25, 5); st.Samples != 25 {
		t.Errorf("Samples = %d, want 25", st.Samples)
	}
}

// TestSampleMultiFaultDegenerateSamples: a campaign that samples
// nothing — fully hardened network, no instruments, or a non-positive
// sample request — must report Samples == 0, never "N samples, mean
// damage 0".
func TestSampleMultiFaultDegenerateSamples(t *testing.T) {
	net := fixture.SIBChain(4)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	opts := DefaultOptions()

	net.Nodes(func(nd *rsn.Node) {
		if nd.IsPrimitive() {
			nd.Hardened = true
		}
	})
	st := SampleMultiFault(net, sp, opts, 2, 300, 11)
	if st.Samples != 0 {
		t.Errorf("fully hardened: Samples = %d, want 0", st.Samples)
	}
	if st.MeanAccessible != 1 {
		t.Errorf("fully hardened: MeanAccessible = %v, want 1", st.MeanAccessible)
	}

	fresh := fixture.SIBChain(4)
	freshSp := spec.FromNetwork(fresh, spec.DefaultCostModel)
	if st := SampleMultiFault(fresh, freshSp, opts, 2, 0, 11); st.Samples != 0 {
		t.Errorf("samples<=0: Samples = %d, want 0", st.Samples)
	}

	b := rsn.NewBuilder("no-instr")
	b.Segment("s", 4, nil)
	noInstr := b.Finish()
	noInstrSp := spec.FromNetwork(noInstr, spec.DefaultCostModel)
	if st := SampleMultiFault(noInstr, noInstrSp, opts, 1, 100, 11); st.Samples != 0 {
		t.Errorf("no instruments: Samples = %d, want 0", st.Samples)
	}
}
