package faults

import (
	"testing"
	"testing/quick"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

func analyzeNet(t *testing.T, net *rsn.Network, opts Options) (*Analysis, *spec.Spec) {
	t.Helper()
	if err := rsn.Validate(net); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	tree, err := sptree.Build(net)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	a, err := Analyze(net, tree, sp, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a, sp
}

// TestPaperExampleDamages verifies the criticality analysis against
// hand-computed damages for the paper's Fig. 1 running example with
// weights i1=(1,2), i2=(3,4), i3=(5,6).
func TestPaperExampleDamages(t *testing.T) {
	net := fixture.PaperExample()
	a, _ := analyzeNet(t, net, DefaultOptions())

	want := map[string]int64{
		// m0 stuck-at-1 loses the whole upper branch: obs 1+3+5 plus
		// set 2+4+6 = 21; stuck-at-0 loses only c1 (no instrument).
		"m0": 21,
		// m1 stuck-at-0 loses i3 (5+6=11), stuck-at-1 loses i2 (7).
		"m1": 11,
		// m2 gates only the uninstrumented c2 against a bypass.
		"m2": 0,
		// c0 on the trunk: everything upstream loses observability.
		"c0": 9,
		// c1 alone in the lower branch.
		"c1": 0,
		// c2 alone in its branch with a bypass alternative.
		"c2": 0,
		// i1 heads the upper branch: own 1+2, and i2,i3 lose
		// settability (4+6).
		"i1": 13,
		// i2 and i3 sit alone in parallel branches: own weights only.
		"i2": 7,
		"i3": 11,
	}
	for name, wantD := range want {
		id := net.Lookup(name)
		if id == rsn.None {
			t.Fatalf("node %q not found", name)
		}
		if got := a.Damage[id]; got != wantD {
			t.Errorf("damage(%s) = %d, want %d", name, got, wantD)
		}
	}
	if wantTotal := int64(72); a.TotalDamage != wantTotal {
		t.Errorf("TotalDamage = %d, want %d", a.TotalDamage, wantTotal)
	}
}

// TestPaperExampleFig4 checks the concrete fault of the paper's Fig. 4:
// m0 stuck-at-1 makes i1, i2 and i3 inaccessible.
func TestPaperExampleFig4(t *testing.T) {
	net := fixture.PaperExample()
	m0 := net.Lookup("m0")
	obsLost, setLost := Effect(net, Fault{Kind: MuxStuck, Node: m0, Port: 1}, DefaultOptions())
	for _, name := range []string{"i1", "i2", "i3"} {
		id := net.Lookup(name)
		if !obsLost[id] || !setLost[id] {
			t.Errorf("%s should be fully inaccessible under m0 stuck-at-1", name)
		}
	}
	// The opposite stuck value keeps every instrument accessible.
	obsLost, setLost = Effect(net, Fault{Kind: MuxStuck, Node: m0, Port: 0}, DefaultOptions())
	for _, id := range net.Instruments() {
		if obsLost[id] || setLost[id] {
			t.Errorf("%s should stay accessible under m0 stuck-at-0", net.Node(id).Name)
		}
	}
}

// TestSegmentFaultDirections checks the asymmetry of segment faults:
// upstream instruments lose observability, downstream ones lose
// settability (Section IV-B.1).
func TestSegmentFaultDirections(t *testing.T) {
	b := rsn.NewBuilder("chain3")
	b.Segment("up", 4, &rsn.Instrument{Name: "up", DamageObs: 1, DamageSet: 1})
	b.Segment("mid", 4, &rsn.Instrument{Name: "mid", DamageObs: 1, DamageSet: 1})
	b.Segment("down", 4, &rsn.Instrument{Name: "down", DamageObs: 1, DamageSet: 1})
	net := b.Finish()

	obsLost, setLost := Effect(net, Fault{Kind: SegmentBreak, Node: net.Lookup("mid")}, DefaultOptions())
	up, mid, down := net.Lookup("up"), net.Lookup("mid"), net.Lookup("down")
	if !obsLost[up] || setLost[up] {
		t.Errorf("up: obsLost=%v setLost=%v, want true/false", obsLost[up], setLost[up])
	}
	if !obsLost[mid] || !setLost[mid] {
		t.Errorf("mid must lose both directions")
	}
	if obsLost[down] || !setLost[down] {
		t.Errorf("down: obsLost=%v setLost=%v, want false/true", obsLost[down], setLost[down])
	}
}

// TestSIBCoupling verifies that a broken SIB register also costs the
// gated sub-network its settability (the paper's segment+mux
// combination rule).
func TestSIBCoupling(t *testing.T) {
	net := fixture.NestedSIBs()
	top := net.Lookup("top")

	// With coupling: ia, ib lose settability (2·(20+40)... no: weights
	// ia=(10,20), ib=(30,40)): break(top) makes ia,ib lose obs (they
	// shift out through the broken register) = 10+30; coupling adds
	// their settability = 20+40. The trailing 'it' sits downstream of
	// the register... actually upstream order: top.fo -> subnet ->
	// top.mux -> top(reg) -> it -> SO, so 'it' loses settability (2).
	a, _ := analyzeNet(t, net, Options{Combine: CombineMax, SIBCoupling: true})
	if got, want := a.Damage[top], int64(10+30+20+40+2); got != want {
		t.Errorf("damage(top) with coupling = %d, want %d", got, want)
	}

	aNo, _ := analyzeNet(t, net, Options{Combine: CombineMax, SIBCoupling: false})
	if got, want := aNo.Damage[top], int64(10+30+2); got != want {
		t.Errorf("damage(top) without coupling = %d, want %d", got, want)
	}

	// The SIB mux stuck-at-deasserted loses the whole sub-network both
	// ways (ia+ib: obs 10+30, set 20+40 = 100); stuck-at-asserted loses
	// nothing; the worst case is the full sub-network.
	mux := net.Node(top).Partner
	if got, want := a.Damage[mux], int64(10+30+20+40); got != want {
		t.Errorf("damage(top.mux) = %d, want %d (subnet obs+set)", got, want)
	}
}

// TestCombinePolicies checks the damage folding policies on a mux with
// asymmetric branches.
func TestCombinePolicies(t *testing.T) {
	b := rsn.NewBuilder("asym")
	bs := b.Fork("f", 2)
	bs.Branch(0).Segment("small", 1, &rsn.Instrument{Name: "small", DamageObs: 1, DamageSet: 1})
	bs.Branch(1).Segment("big", 1, &rsn.Instrument{Name: "big", DamageObs: 10, DamageSet: 10})
	bs.Join("m", rsn.External())
	net := b.Finish()
	m := net.Lookup("m")

	// stuck@0 loses "big" (20); stuck@1 loses "small" (2).
	aMax, _ := analyzeNet(t, net, Options{Combine: CombineMax, SIBCoupling: true})
	if got := aMax.Damage[m]; got != 20 {
		t.Errorf("max damage = %d, want 20", got)
	}
	aSum, _ := analyzeNet(t, net, Options{Combine: CombineSum, SIBCoupling: true})
	if got := aSum.Damage[m]; got != 22 {
		t.Errorf("sum damage = %d, want 22", got)
	}
	aMean, _ := analyzeNet(t, net, Options{Combine: CombineMean, SIBCoupling: true})
	if got := aMean.Damage[m]; got != 11 {
		t.Errorf("mean damage = %d, want 11", got)
	}
}

// TestAnalyzeMatchesReference cross-checks the tree-based engine against
// graph reachability on the fixtures.
func TestAnalyzeMatchesReference(t *testing.T) {
	nets := []*rsn.Network{
		fixture.PaperExample(),
		fixture.SIBChain(5),
		fixture.NestedSIBs(),
	}
	for _, net := range nets {
		for _, combine := range []Combine{CombineMax, CombineSum, CombineMean} {
			opts := Options{Combine: combine, SIBCoupling: true}
			a, sp := analyzeNet(t, net, opts)
			ref := ReferenceDamage(net, sp, opts)
			for _, id := range net.Primitives() {
				if a.Damage[id] != ref[id] {
					t.Errorf("%s/%v: damage(%s) = %d, reference %d",
						net.Name, combine, net.Node(id).Name, a.Damage[id], ref[id])
				}
			}
		}
	}
}

// TestAnalyzeMatchesReferenceRandom is the central property test: on
// random series-parallel networks the O(tree) analysis must equal the
// O(primitives·edges) graph reference for every primitive.
func TestAnalyzeMatchesReferenceRandom(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 50})
		tree, err := sptree.Build(net)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sp := spec.FromNetwork(net, spec.DefaultCostModel)
		opts := Options{Combine: CombineMax, SIBCoupling: true}
		a, err := Analyze(net, tree, sp, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref := ReferenceDamage(net, sp, opts)
		for _, id := range net.Primitives() {
			if a.Damage[id] != ref[id] {
				t.Logf("seed %d: damage(%s) = %d, reference %d",
					seed, net.Node(id).Name, a.Damage[id], ref[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeMatchesReferenceRandomCtrl repeats the central property
// test on networks with segment-controlled multiplexers and the
// extended control-coupling analysis enabled.
func TestAnalyzeMatchesReferenceRandomCtrl(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 50, SegmentControls: true})
		tree, err := sptree.Build(net)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sp := spec.FromNetwork(net, spec.DefaultCostModel)
		opts := Options{Combine: CombineMax, SIBCoupling: true, CtrlCoupling: true}
		a, err := Analyze(net, tree, sp, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref := ReferenceDamage(net, sp, opts)
		for _, id := range net.Primitives() {
			if a.Damage[id] != ref[id] {
				t.Logf("seed %d: damage(%s) = %d, reference %d",
					seed, net.Node(id).Name, a.Damage[id], ref[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCritHit verifies that primitives endangering critical instruments
// are flagged. In the paper example i3 is control-critical; every
// primitive whose fault costs i3 its settability must be flagged.
func TestCritHit(t *testing.T) {
	net := fixture.PaperExample()
	a, _ := analyzeNet(t, net, DefaultOptions())

	wantHit := map[string]bool{
		"m0": true,  // stuck-at-1 loses i3 entirely
		"m1": true,  // stuck-at-1 loses i3
		"i1": true,  // break costs i3 its settability
		"i3": true,  // own break
		"m2": false, // gates only c2
		"c0": false, // downstream: costs observability only
		"c1": false,
		"c2": false,
		"i2": false,
	}
	for name, want := range wantHit {
		id := net.Lookup(name)
		if got := a.CritHit[id]; got != want {
			t.Errorf("CritHit(%s) = %v, want %v", name, got, want)
		}
	}
	must := a.MustHarden()
	if len(must) != 4 {
		t.Errorf("MustHarden returned %d primitives, want 4", len(must))
	}
}

// TestResidualDamage checks objective bookkeeping.
func TestResidualDamage(t *testing.T) {
	net := fixture.PaperExample()
	a, sp := analyzeNet(t, net, DefaultOptions())

	none := make([]bool, net.NumNodes())
	if got := a.ResidualDamage(none); got != a.TotalDamage {
		t.Errorf("ResidualDamage(nothing) = %d, want %d", got, a.TotalDamage)
	}
	if got := a.HardeningCost(none); got != 0 {
		t.Errorf("HardeningCost(nothing) = %d, want 0", got)
	}

	all := make([]bool, net.NumNodes())
	for _, id := range net.Primitives() {
		all[id] = true
	}
	if got := a.ResidualDamage(all); got != 0 {
		t.Errorf("ResidualDamage(everything) = %d, want 0", got)
	}
	if got := a.HardeningCost(all); got != sp.MaxCost() {
		t.Errorf("HardeningCost(everything) = %d, want %d", got, sp.MaxCost())
	}

	// Hardening only m0 removes exactly d(m0)=21.
	onlyM0 := make([]bool, net.NumNodes())
	onlyM0[net.Lookup("m0")] = true
	if got := a.ResidualDamage(onlyM0); got != a.TotalDamage-21 {
		t.Errorf("ResidualDamage(m0) = %d, want %d", got, a.TotalDamage-21)
	}
}

// TestFaultUniverse checks fault enumeration.
func TestFaultUniverse(t *testing.T) {
	net := fixture.PaperExample()
	u := Universe(net)
	// 6 segments (1 mode each) + 3 two-port muxes (2 modes each).
	if len(u) != 6+6 {
		t.Errorf("universe size = %d, want 12", len(u))
	}
	for _, f := range u {
		if !net.Node(f.Node).IsPrimitive() {
			t.Errorf("fault %v on non-primitive", f.String(net))
		}
	}
}

// TestCtrlCoupling checks the extended analysis: a broken control
// segment inherits the worst stuck damage of the muxes it steers.
func TestCtrlCoupling(t *testing.T) {
	b := rsn.NewBuilder("ctrl")
	cfg := b.Segment("cfg", 1, nil)
	bs := b.Fork("f", 2)
	bs.Branch(0).Segment("x", 1, &rsn.Instrument{Name: "x", DamageObs: 5, DamageSet: 5})
	bs.Branch(1).Segment("y", 1, &rsn.Instrument{Name: "y", DamageObs: 3, DamageSet: 3})
	bs.Join("m", rsn.Control{Source: cfg, Bit: 0, Width: 1})
	net := b.Finish()

	plain, _ := analyzeNet(t, net, Options{Combine: CombineMax, SIBCoupling: true})
	coupled, _ := analyzeNet(t, net, Options{Combine: CombineMax, SIBCoupling: true, CtrlCoupling: true})

	// Without coupling, cfg's break costs x and y their settability
	// (5+3=8); with coupling the mux fails to its deasserted port 0, so
	// branch 1 (y) additionally loses observability (+3).
	cfgID := net.Lookup("cfg")
	if got := plain.Damage[cfgID]; got != 8 {
		t.Errorf("plain damage(cfg) = %d, want 8", got)
	}
	if got := coupled.Damage[cfgID]; got != 11 {
		t.Errorf("coupled damage(cfg) = %d, want 11", got)
	}

	// Reference agrees.
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	ref := ReferenceDamage(net, sp, Options{Combine: CombineMax, SIBCoupling: true, CtrlCoupling: true})
	if ref[cfgID] != coupled.Damage[cfgID] {
		t.Errorf("reference damage(cfg) = %d, analysis %d", ref[cfgID], coupled.Damage[cfgID])
	}
}
