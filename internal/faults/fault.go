// Package faults implements the fault model and the exact criticality
// analysis of Sections IV-B and IV-C of the paper.
//
// The fault universe consists of permanent faults in scan primitives:
// a scan segment may break (its shift path loses integrity), and a scan
// multiplexer may be stuck at one of its input ports ("stuck-at-id").
// Segment Insertion Bits combine both: their register behaves like a
// segment — and, because the register drives the insertion multiplexer,
// a broken register additionally makes the gated sub-network
// unprogrammable — while their multiplexer's stuck-at-asserted /
// stuck-at-deasserted faults are the two stuck-at-port faults.
//
// For every primitive j the analysis computes the damage
//
//	d_j = Σ_i do_i·y_ij + Σ_i ds_i·z_ij
//
// where y_ij (z_ij) indicates that instrument i loses observability
// (settability) when j is defective. The computation runs on the binary
// decomposition tree in a single traversal (O(tree size)); a graph-based
// reference implementation is provided for cross-checking.
package faults

import (
	"fmt"

	"rsnrobust/internal/rsn"
)

// Kind enumerates fault kinds.
type Kind uint8

// Fault kinds. SegmentBreak removes a segment vertex from the graph
// model; MuxStuck pins a multiplexer to one input port.
const (
	SegmentBreak Kind = iota
	MuxStuck
)

// String returns a short kind name.
func (k Kind) String() string {
	switch k {
	case SegmentBreak:
		return "segment-break"
	case MuxStuck:
		return "mux-stuck"
	default:
		return fmt.Sprintf("fault-kind(%d)", uint8(k))
	}
}

// Fault is a single permanent fault in a scan primitive.
type Fault struct {
	Kind Kind
	// Node is the affected primitive.
	Node rsn.NodeID
	// Port is the input port a stuck multiplexer permanently selects
	// (MuxStuck only). For a SIB mux, port 0 is "stuck-at-deasserted"
	// and port 1 is "stuck-at-asserted".
	Port int
}

// String formats the fault with the node's name resolved against net.
func (f Fault) String(net *rsn.Network) string {
	name := net.Node(f.Node).Name
	switch f.Kind {
	case SegmentBreak:
		return fmt.Sprintf("break(%s)", name)
	case MuxStuck:
		return fmt.Sprintf("stuck(%s@%d)", name, f.Port)
	default:
		return fmt.Sprintf("%v(%s)", f.Kind, name)
	}
}

// FaultsOf enumerates the fault modes of one primitive.
func FaultsOf(net *rsn.Network, id rsn.NodeID) []Fault {
	nd := net.Node(id)
	switch nd.Kind {
	case rsn.KindSegment:
		return []Fault{{Kind: SegmentBreak, Node: id}}
	case rsn.KindMux:
		out := make([]Fault, len(net.Pred(id)))
		for p := range out {
			out[p] = Fault{Kind: MuxStuck, Node: id, Port: p}
		}
		return out
	default:
		return nil
	}
}

// Universe enumerates every single fault of every primitive in the
// network, in primitive ID order.
func Universe(net *rsn.Network) []Fault {
	var out []Fault
	for _, id := range net.Primitives() {
		out = append(out, FaultsOf(net, id)...)
	}
	return out
}

// Combine selects how the per-fault-mode damages of one primitive are
// folded into the primitive's single damage value d_j.
type Combine uint8

// Combine policies. CombineMax (default) takes the worst fault mode,
// CombineSum adds all modes, CombineMean averages them (integer
// division).
const (
	CombineMax Combine = iota
	CombineSum
	CombineMean
)

// String returns "max", "sum" or "mean".
func (c Combine) String() string {
	switch c {
	case CombineMax:
		return "max"
	case CombineSum:
		return "sum"
	case CombineMean:
		return "mean"
	default:
		return fmt.Sprintf("combine(%d)", uint8(c))
	}
}

func (c Combine) fold(vals []int64) int64 {
	if len(vals) == 0 {
		return 0
	}
	switch c {
	case CombineSum:
		var s int64
		for _, v := range vals {
			s += v
		}
		return s
	case CombineMean:
		var s int64
		for _, v := range vals {
			s += v
		}
		return s / int64(len(vals))
	default: // CombineMax
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
}
