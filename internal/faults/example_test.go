package faults_test

import (
	"fmt"

	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

// ExampleAnalyze runs the criticality analysis on the paper's running
// example and prints the damage of the multiplexer m0 — the fault of
// the paper's Fig. 4.
func ExampleAnalyze() {
	net := fixture.PaperExample()
	tree, _ := sptree.Build(net)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)

	a, err := faults.Analyze(net, tree, sp, faults.DefaultOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	m0 := net.Lookup("m0")
	fmt.Printf("d(m0)=%d of total %d; hits a critical instrument: %v\n",
		a.Damage[m0], a.TotalDamage, a.CritHit[m0])
	// Output:
	// d(m0)=21 of total 72; hits a critical instrument: true
}
