package faults

import (
	"fmt"

	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

// Scope selects the fault universe (and thereby the hardening candidate
// set) of the analysis.
type Scope uint8

// Fault universe scopes. ScopeAll covers every scan primitive (the
// general model of Section IV). ScopeControl restricts the universe to
// the control primitives — multiplexers and the segments that source
// multiplexer select values (SIB registers included): the spots whose
// faults corrupt scan PATHS, which the paper's selective hardening
// targets (instrument data registers are protected by the orthogonal,
// conventional means referenced in Section I).
const (
	ScopeAll Scope = iota
	ScopeControl
)

// String returns "all" or "control".
func (s Scope) String() string {
	if s == ScopeControl {
		return "control"
	}
	return "all"
}

// Options configures the criticality analysis.
type Options struct {
	// Combine folds the per-fault-mode damages of a primitive into d_j.
	Combine Combine
	// Scope selects the fault universe / hardening candidate set.
	Scope Scope
	// SIBCoupling models the control dependency inside a SIB: a broken
	// SIB register leaves the insertion multiplexer unprogrammable, so
	// the gated sub-network additionally loses settability. This is the
	// paper's "combination of a scan segment and a multiplexer" rule.
	SIBCoupling bool
	// CtrlCoupling extends the same reasoning to every multiplexer whose
	// control bits live in a scan segment: a fault in the control
	// segment adds the worst-case stuck damage of each dependent mux.
	// The paper's analysis is purely structural, so this defaults off;
	// it is exercised by the extended-analysis ablation.
	CtrlCoupling bool
}

// DefaultOptions matches the paper: worst-case fault mode per primitive
// and SIB register/multiplexer coupling.
func DefaultOptions() Options {
	return Options{Combine: CombineMax, SIBCoupling: true}
}

// Analysis holds the result of the criticality analysis of one network
// under one specification.
type Analysis struct {
	Net  *rsn.Network
	Tree *sptree.Tree
	Spec *spec.Spec
	Opts Options

	// Prims is the fault universe (hardening candidates) in ID order.
	Prims []rsn.NodeID
	// Damage maps every node ID to its damage d_j (zero outside the
	// fault universe).
	Damage []int64
	// CritHit marks primitives whose fault makes at least one critical
	// instrument inaccessible in the protected direction; these must be
	// hardened to fulfil the paper's guarantee that all important
	// instruments stay accessible.
	CritHit []bool
	// TotalDamage is Σ_j d_j over all primitives: the system damage when
	// nothing is hardened (Table I column "Max. Damage").
	TotalDamage int64
}

// Analyze runs the criticality analysis. The tree must belong to net and
// the specification must be sized for net.
func Analyze(net *rsn.Network, tree *sptree.Tree, sp *spec.Spec, opts Options) (*Analysis, error) {
	if tree.Network() != net {
		return nil, fmt.Errorf("faults: tree was built for network %q, not %q", tree.Network().Name, net.Name)
	}
	if len(sp.DObs) != net.NumNodes() {
		return nil, fmt.Errorf("faults: spec sized for %d nodes, network has %d", len(sp.DObs), net.NumNodes())
	}
	a := &Analysis{
		Net:     net,
		Tree:    tree,
		Spec:    sp,
		Opts:    opts,
		Prims:   universeOf(net, opts.Scope),
		Damage:  make([]int64, net.NumNodes()),
		CritHit: make([]bool, net.NumNodes()),
	}

	// Critical-instrument indicator vectors (1 per critical direction).
	critObs := make([]int64, net.NumNodes())
	critSet := make([]int64, net.NumNodes())
	net.Nodes(func(nd *rsn.Node) {
		if nd.Kind == rsn.KindSegment && nd.Instr != nil {
			if nd.Instr.CriticalObs {
				critObs[nd.ID] = 1
			}
			if nd.Instr.CriticalSet {
				critSet[nd.ID] = 1
			}
		}
	})

	sumObs := tree.SubtreeSums(sp.DObs)
	sumSet := tree.SubtreeSums(sp.DSet)
	sumCObs := tree.SubtreeSums(critObs)
	sumCSet := tree.SubtreeSums(critSet)

	// Segment walk: accumulate, for every leaf, the weights of the
	// instruments that lose observability (series-earlier within the
	// enclosing branch) and settability (series-later) under a break of
	// that leaf's primitive.
	accObs, accSet := a.walk(sumObs, sumSet)
	accCObs, accCSet := a.walk(sumCObs, sumCSet)

	for _, id := range a.Prims {
		nd := net.Node(id)
		switch nd.Kind {
		case rsn.KindSegment:
			leaf := tree.LeafOf(id)
			d := accObs[leaf] + accSet[leaf] + sp.DObs[id] + sp.DSet[id]
			chit := accCObs[leaf]+accCSet[leaf]+critObs[id]+critSet[id] > 0
			if opts.SIBCoupling && nd.SIB && nd.Partner != rsn.None {
				// A broken SIB register also leaves the gated
				// sub-network unprogrammable: it additionally loses
				// settability (its observability loss is already part
				// of the series walk, the sub-network being
				// series-earlier than the register).
				if sub := sibSubnet(tree, nd.Partner); sub != sptree.NilRef {
					d += sumSet[sub]
					chit = chit || sumCSet[sub] > 0
				}
			}
			a.Damage[id] = d
			a.CritHit[id] = chit
		case rsn.KindMux:
			d, chit := a.muxDamage(id, opts.Combine, sumObs, sumSet, sumCObs, sumCSet)
			a.Damage[id] = d
			a.CritHit[id] = chit
		}
	}

	if opts.CtrlCoupling {
		a.applyCtrlCoupling(sumObs, sumSet, sumCObs, sumCSet)
	}

	for _, id := range a.Prims {
		a.TotalDamage += a.Damage[id]
	}
	return a, nil
}

// walk performs the pre-order accumulator traversal: entering the right
// child of a series node adds the left sibling's observability sum
// (those instruments shift out across the fault spot); entering the left
// child adds the right sibling's settability sum. Parallel nodes isolate
// the fault inside the branch controlled by the parental multiplexer, so
// the accumulators reset. Results are indexed by NodeRef (leaf refs).
func (a *Analysis) walk(sumObs, sumSet []int64) (accObs, accSet []int64) {
	n := a.Tree.Size()
	accObs = make([]int64, n)
	accSet = make([]int64, n)
	type frame struct {
		ref      sptree.NodeRef
		obs, set int64
	}
	stack := []frame{{ref: a.Tree.Root()}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch a.Tree.OpOf(fr.ref) {
		case sptree.OpLeaf:
			accObs[fr.ref] = fr.obs
			accSet[fr.ref] = fr.set
		case sptree.OpSeries:
			l, r := a.Tree.Children(fr.ref)
			stack = append(stack,
				frame{ref: l, obs: fr.obs, set: fr.set + sumSet[r]},
				frame{ref: r, obs: fr.obs + sumObs[l], set: fr.set},
			)
		case sptree.OpParallel:
			l, r := a.Tree.Children(fr.ref)
			stack = append(stack, frame{ref: l}, frame{ref: r})
		}
	}
	return accObs, accSet
}

// muxDamage computes the damage of a stuck multiplexer: stuck at port b,
// every other branch of the parallel section it closes loses both
// observability and settability.
func (a *Analysis) muxDamage(id rsn.NodeID, combine Combine, sumObs, sumSet, sumCObs, sumCSet []int64) (int64, bool) {
	brs := a.Tree.Branches(id)
	if len(brs) == 0 {
		return 0, false
	}
	var total, totalCrit int64
	per := make([]int64, len(brs))
	perCrit := make([]int64, len(brs))
	for i, b := range brs {
		per[i] = sumObs[b] + sumSet[b]
		perCrit[i] = sumCObs[b] + sumCSet[b]
		total += per[i]
		totalCrit += perCrit[i]
	}
	modes := make([]int64, len(brs))
	chit := false
	for b := range brs {
		modes[b] = total - per[b]
		if totalCrit-perCrit[b] > 0 {
			chit = true
		}
	}
	return combine.fold(modes), chit
}

// sibSubnet returns the gated sub-network branch (port 1) of a SIB mux,
// or NilRef for a degenerate SIB.
func sibSubnet(tree *sptree.Tree, mux rsn.NodeID) sptree.NodeRef {
	brs := tree.Branches(mux)
	if len(brs) < 2 {
		return sptree.NilRef
	}
	return brs[1]
}

// applyCtrlCoupling adds, for every non-SIB multiplexer controlled from
// a scan segment, the coupling damage to that control segment: a broken
// control segment leaves the mux unprogrammable, failing to its
// deasserted port 0, so every other branch becomes inaccessible. The
// control segment sits series-before the section it steers, so the
// branches' settability loss is already part of the segment walk; the
// increment is their observability weight. (SIB registers sit after
// their mux and are handled by SIBCoupling with the mirrored increment.)
//
// The computation assumes each control segment steers at most one
// multiplexer, or non-nested sections; overlapping nested sections under
// a shared control segment would be double-counted (the graph reference
// would flag such a network in the cross-check tests).
func (a *Analysis) applyCtrlCoupling(sumObs, sumSet, sumCObs, sumCSet []int64) {
	a.Net.Nodes(func(nd *rsn.Node) {
		if nd.Kind != rsn.KindMux || nd.SIB {
			return
		}
		src := nd.Ctrl.Source
		if src == rsn.None {
			return
		}
		brs := a.Tree.Branches(nd.ID)
		for b := 1; b < len(brs); b++ {
			a.Damage[src] += sumObs[brs[b]]
			if sumCObs[brs[b]] > 0 {
				a.CritHit[src] = true
			}
		}
	})
}

// universeOf returns the fault universe for the scope, in ID order.
func universeOf(net *rsn.Network, scope Scope) []rsn.NodeID {
	if scope == ScopeAll {
		return net.Primitives()
	}
	isCtrlSeg := make([]bool, net.NumNodes())
	net.Nodes(func(nd *rsn.Node) {
		if nd.Kind == rsn.KindMux && nd.Ctrl.Source != rsn.None {
			isCtrlSeg[nd.Ctrl.Source] = true
		}
	})
	var out []rsn.NodeID
	net.Nodes(func(nd *rsn.Node) {
		if nd.Kind == rsn.KindMux || (nd.Kind == rsn.KindSegment && isCtrlSeg[nd.ID]) {
			out = append(out, nd.ID)
		}
	})
	return out
}

// MaxCost returns the cost of hardening the whole fault universe
// (Table I column "Max. Cost" under the analysis scope).
func (a *Analysis) MaxCost() int64 {
	var sum int64
	for _, id := range a.Prims {
		sum += a.Spec.Cost[id]
	}
	return sum
}

// MustHarden returns the primitives whose fault hits a critical
// instrument; hardening exactly these guarantees that all important
// instruments stay accessible under any single fault.
func (a *Analysis) MustHarden() []rsn.NodeID {
	var out []rsn.NodeID
	for _, id := range a.Prims {
		if a.CritHit[id] {
			out = append(out, id)
		}
	}
	return out
}

// ResidualDamage returns Σ d_j over the primitives not hardened in x
// (x indexed by NodeID). This is objective (2) of Section V for a given
// hardening decision.
func (a *Analysis) ResidualDamage(hardened []bool) int64 {
	var d int64
	for _, id := range a.Prims {
		if !hardened[id] {
			d += a.Damage[id]
		}
	}
	return d
}

// HardeningCost returns Σ c_j x_j, objective (3) of Section V.
func (a *Analysis) HardeningCost(hardened []bool) int64 {
	var c int64
	for _, id := range a.Prims {
		if hardened[id] {
			c += a.Spec.Cost[id]
		}
	}
	return c
}
