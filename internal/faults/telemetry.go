package faults

import "rsnrobust/internal/telemetry"

// Publish records the headline figures of a completed criticality
// analysis as telemetry gauges: fault-universe size, damage and cost
// totals, and the must-harden set protecting the critical instruments.
// A nil collector is a no-op.
func (a *Analysis) Publish(c *telemetry.Collector) {
	if c == nil {
		return
	}
	var critHit int
	var worst int64
	for _, id := range a.Prims {
		if a.CritHit[id] {
			critHit++
		}
		if d := a.Damage[id]; d > worst {
			worst = d
		}
	}
	c.Gauge("analysis.primitives").Set(float64(len(a.Prims)))
	c.Gauge("analysis.total_damage").Set(float64(a.TotalDamage))
	c.Gauge("analysis.max_cost").Set(float64(a.MaxCost()))
	c.Gauge("analysis.must_harden").Set(float64(critHit))
	c.Gauge("analysis.worst_fault_damage").Set(float64(worst))
}
