package faults

import (
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

// Effect computes, directly on the graph, which instruments lose
// observability and settability under a single fault (Section IV-B):
//
//   - a broken segment is removed from the graph: an instrument loses
//     observability iff it can no longer reach scan-out, and loses
//     settability iff clean data can no longer arrive from scan-in or it
//     can no longer lie on any sensitizable path;
//   - a multiplexer stuck at port b kills the edges into its other
//     ports; every instrument that can no longer reach scan-out can
//     never lie on a sensitizable path and loses both directions;
//   - a broken segment that sources multiplexer control bits leaves
//     those multiplexers unprogrammable; they fail to their deasserted
//     port 0, so the other branches become inaccessible. opts.SIBCoupling
//     enables this rule for SIB register/mux pairs (the paper's
//     "combination of a scan segment and a multiplexer"),
//     opts.CtrlCoupling extends it to every segment-controlled mux.
//
// The returned slices are indexed by rsn.NodeID and are true only for
// instrument-hosting segments. This is the O(E)-per-fault reference the
// tree-based Analysis is validated against, and it agrees bit-for-bit
// with the access.Simulator under the paper's semantics.
func Effect(net *rsn.Network, f Fault, opts Options) (obsLost, setLost []bool) {
	skip := rsn.None
	var dead map[edgeKey]bool

	switch f.Kind {
	case SegmentBreak:
		skip = f.Node
		dead = ctrlDeadEdges(net, f.Node, opts)
	case MuxStuck:
		dead = stuckDeadEdges(net, f.Node, f.Port)
	}

	toSO := backwardReach(net, net.ScanOut, skip, dead)
	fromSI := forwardReach(net, net.ScanIn, skip, dead)
	// Settability additionally requires lying on some sensitizable path,
	// which the broken segment itself does not prevent (shifting still
	// clocks the chain) but dead mux edges do.
	toSOPath := toSO
	if skip != rsn.None {
		toSOPath = backwardReach(net, net.ScanOut, rsn.None, dead)
	}

	obsLost = make([]bool, net.NumNodes())
	setLost = make([]bool, net.NumNodes())
	for i := 0; i < net.NumNodes(); i++ {
		nd := net.Node(rsn.NodeID(i))
		if nd.Kind != rsn.KindSegment || nd.Instr == nil {
			continue
		}
		obsLost[i] = !toSO[i]
		setLost[i] = !fromSI[i] || !toSOPath[i]
	}
	return obsLost, setLost
}

// ctrlDeadEdges returns the mux input edges that die because their
// select source broke: the dependent muxes fail to port 0.
func ctrlDeadEdges(net *rsn.Network, src rsn.NodeID, opts Options) map[edgeKey]bool {
	var dead map[edgeKey]bool
	net.Nodes(func(nd *rsn.Node) {
		if nd.Kind != rsn.KindMux || nd.Ctrl.Source != src {
			return
		}
		if nd.SIB && !opts.SIBCoupling {
			return
		}
		if !nd.SIB && !opts.CtrlCoupling {
			return
		}
		if dead == nil {
			dead = make(map[edgeKey]bool)
		}
		for p, from := range net.Pred(nd.ID) {
			if p != 0 {
				dead[edgeKey{from: from, to: nd.ID, port: p}] = true
			}
		}
	})
	return dead
}

// stuckDeadEdges returns the in-edges of mux that a stuck-at-port fault
// disables.
func stuckDeadEdges(net *rsn.Network, mux rsn.NodeID, alivePort int) map[edgeKey]bool {
	dead := make(map[edgeKey]bool)
	for p, from := range net.Pred(mux) {
		if p != alivePort {
			dead[edgeKey{from: from, to: mux, port: p}] = true
		}
	}
	return dead
}

// edgeKey identifies a directed edge by endpoints and the port index at
// the target (to distinguish parallel edges into one mux).
type edgeKey struct {
	from, to rsn.NodeID
	port     int
}

// forwardReach marks the nodes reachable from start, never entering the
// skip node and never using dead edges.
func forwardReach(net *rsn.Network, start, skip rsn.NodeID, dead map[edgeKey]bool) []bool {
	seen := make([]bool, net.NumNodes())
	if start == skip {
		return seen
	}
	seen[start] = true
	stack := []rsn.NodeID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range net.Succ(v) {
			if t == skip || seen[t] {
				continue
			}
			if dead != nil && net.Node(t).Kind == rsn.KindMux {
				// Parallel edges (several ports fed by the same
				// predecessor) stay alive as long as any one port does.
				alive := false
				for p, u := range net.Pred(t) {
					if u == v && !dead[edgeKey{from: v, to: t, port: p}] {
						alive = true
						break
					}
				}
				if !alive {
					continue
				}
			}
			seen[t] = true
			stack = append(stack, t)
		}
	}
	return seen
}

// backwardReach marks the nodes that can reach end, never entering the
// skip node and never using dead edges.
func backwardReach(net *rsn.Network, end, skip rsn.NodeID, dead map[edgeKey]bool) []bool {
	seen := make([]bool, net.NumNodes())
	if end == skip {
		return seen
	}
	seen[end] = true
	stack := []rsn.NodeID{end}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p, t := range net.Pred(v) {
			if t == skip || seen[t] {
				continue
			}
			if dead != nil && net.Node(v).Kind == rsn.KindMux {
				if dead[edgeKey{from: t, to: v, port: p}] {
					continue
				}
			}
			seen[t] = true
			stack = append(stack, t)
		}
	}
	return seen
}

// ReferenceDamage recomputes every primitive's damage d_j from graph
// reachability alone, folding fault modes with the configured combine
// policy. Intended for validating Analyze on small networks; it is
// O(primitives × edges).
func ReferenceDamage(net *rsn.Network, sp *spec.Spec, opts Options) []int64 {
	dmg := make([]int64, net.NumNodes())
	for _, id := range net.Primitives() {
		var modes []int64
		for _, f := range FaultsOf(net, id) {
			obsLost, setLost := Effect(net, f, opts)
			var d int64
			for i := 0; i < net.NumNodes(); i++ {
				if obsLost[i] {
					d += sp.DObs[i]
				}
				if setLost[i] {
					d += sp.DSet[i]
				}
			}
			modes = append(modes, d)
		}
		dmg[id] = opts.Combine.fold(modes)
	}
	return dmg
}
