package faults

import (
	"fmt"

	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

// AnalyzeGraph computes the criticality analysis for ARBITRARY acyclic
// RSNs — no series-parallel restriction — using dominator trees instead
// of the binary decomposition tree. Where the paper preprocesses non-SP
// networks with virtual vertices ([19]) before the hierarchical
// analysis, this engine works on the graph directly:
//
//   - instrument i loses observability under a broken segment j iff j
//     post-dominates i (every i→scan-out path crosses j): the
//     observability damage of every segment is a subtree sum over the
//     post-dominator tree rooted at scan-out;
//   - i loses settability iff j dominates i from scan-in: a subtree sum
//     over the dominator tree rooted at scan-in;
//   - a two-port multiplexer stuck at port b kills exactly one input
//     edge; splitting every mux input edge with a virtual vertex makes
//     "all paths cross this edge" a post-dominator subtree query too.
//
// Multiplexers with more than two ports and control-coupled segments
// fall back to per-fault reachability (their loss sets are unions that
// need not nest). On series-parallel networks AnalyzeGraph returns
// exactly the same damages as Analyze — the cross-check tests assert it
// — and additionally covers the redundant structures of internal/ftrsn
// that the SP parser rejects.
func AnalyzeGraph(net *rsn.Network, sp *spec.Spec, opts Options) (*Analysis, error) {
	if len(sp.DObs) != net.NumNodes() {
		return nil, fmt.Errorf("faults: spec sized for %d nodes, network has %d", len(sp.DObs), net.NumNodes())
	}
	if _, err := net.TopoOrder(); err != nil {
		return nil, err
	}
	a := &Analysis{
		Net:     net,
		Spec:    sp,
		Opts:    opts,
		Prims:   universeOf(net, opts.Scope),
		Damage:  make([]int64, net.NumNodes()),
		CritHit: make([]bool, net.NumNodes()),
	}

	critObs := make([]int64, net.NumNodes())
	critSet := make([]int64, net.NumNodes())
	net.Nodes(func(nd *rsn.Node) {
		if nd.Kind == rsn.KindSegment && nd.Instr != nil {
			if nd.Instr.CriticalObs {
				critObs[nd.ID] = 1
			}
			if nd.Instr.CriticalSet {
				critSet[nd.ID] = 1
			}
		}
	})

	post := newDomTree(net, true) // post-dominators, rooted at scan-out
	fwd := newDomTree(net, false) // dominators, rooted at scan-in

	postObs := post.subtreeSums(sp.DObs)
	postSet := post.subtreeSums(sp.DSet)
	postCObs := post.subtreeSums(critObs)
	postCSet := post.subtreeSums(critSet)
	fwdSet := fwd.subtreeSums(sp.DSet)
	fwdCSet := fwd.subtreeSums(critSet)

	for _, id := range a.Prims {
		nd := net.Node(id)
		switch nd.Kind {
		case rsn.KindSegment:
			d := postObs[id] + fwdSet[id]
			chit := postCObs[id]+fwdCSet[id] > 0
			if coupledMuxes := a.coupledMuxes(id); len(coupledMuxes) > 0 {
				// Loss unions need not nest across the two trees: exact
				// per-fault reachability instead.
				d, chit = a.bfsDamage(Fault{Kind: SegmentBreak, Node: id}, critObs, critSet)
			}
			a.Damage[id] = d
			a.CritHit[id] = chit
		case rsn.KindMux:
			preds := net.Pred(id)
			if len(preds) == 2 {
				// Stuck at port b kills the opposite port's edge.
				modes := []int64{
					postObs[post.edgeNode(id, 1)] + postSet[post.edgeNode(id, 1)],
					postObs[post.edgeNode(id, 0)] + postSet[post.edgeNode(id, 0)],
				}
				a.Damage[id] = opts.Combine.fold(modes)
				a.CritHit[id] = postCObs[post.edgeNode(id, 0)]+postCSet[post.edgeNode(id, 0)]+
					postCObs[post.edgeNode(id, 1)]+postCSet[post.edgeNode(id, 1)] > 0
			} else {
				var modes []int64
				chit := false
				for _, f := range FaultsOf(net, id) {
					d, c := a.bfsDamage(f, critObs, critSet)
					modes = append(modes, d)
					chit = chit || c
				}
				a.Damage[id] = opts.Combine.fold(modes)
				a.CritHit[id] = chit
			}
		}
	}

	for _, id := range a.Prims {
		a.TotalDamage += a.Damage[id]
	}
	return a, nil
}

// coupledMuxes returns the multiplexers whose select source is the
// given segment, honoring the coupling options.
func (a *Analysis) coupledMuxes(src rsn.NodeID) []rsn.NodeID {
	var out []rsn.NodeID
	a.Net.Nodes(func(nd *rsn.Node) {
		if nd.Kind != rsn.KindMux || nd.Ctrl.Source != src {
			return
		}
		if nd.SIB && !a.Opts.SIBCoupling {
			return
		}
		if !nd.SIB && !a.Opts.CtrlCoupling {
			return
		}
		out = append(out, nd.ID)
	})
	return out
}

// bfsDamage computes one fault's exact damage by graph reachability.
func (a *Analysis) bfsDamage(f Fault, critObs, critSet []int64) (int64, bool) {
	obsLost, setLost := Effect(a.Net, f, a.Opts)
	var d int64
	chit := false
	for i := 0; i < a.Net.NumNodes(); i++ {
		if obsLost[i] {
			d += a.Spec.DObs[i]
			chit = chit || critObs[i] > 0
		}
		if setLost[i] {
			d += a.Spec.DSet[i]
			chit = chit || critSet[i] > 0
		}
	}
	return d, chit
}

// domTree is a (post-)dominator tree over the network augmented with
// one virtual vertex per multiplexer input edge.
type domTree struct {
	net     *rsn.Network
	reverse bool
	n       int     // augmented node count
	idom    []int32 // immediate dominator per augmented node (-1 root/unreached)
	order   []int32 // processing order (root first)
	rank    []int32 // position in order
	// edgeBase[m] is the first virtual id of mux m's input edges.
	edgeBase []int32
	// vOwner/vPort decode virtual ids (index: id - NumNodes).
	vOwner []rsn.NodeID
	vPort  []int32
}

// edgeNode returns the augmented id of the virtual vertex splitting
// port p's input edge of mux m.
func (t *domTree) edgeNode(m rsn.NodeID, p int) int32 {
	return t.edgeBase[m] + int32(p)
}

// newDomTree computes the dominator tree of the augmented graph, rooted
// at scan-out when reverse is true (post-dominators) or scan-in
// otherwise. The graph is a DAG, so one pass over a topological order
// with NCA-merging of predecessors suffices.
func newDomTree(net *rsn.Network, reverse bool) *domTree {
	t := &domTree{net: net, reverse: reverse}
	t.edgeBase = make([]int32, net.NumNodes())
	n := net.NumNodes()
	for i := 0; i < net.NumNodes(); i++ {
		id := rsn.NodeID(i)
		if net.Node(id).Kind == rsn.KindMux {
			t.edgeBase[i] = int32(n)
			for p := range net.Pred(id) {
				t.vOwner = append(t.vOwner, id)
				t.vPort = append(t.vPort, int32(p))
			}
			n += len(net.Pred(id))
		}
	}
	t.n = n
	t.idom = make([]int32, n)
	t.rank = make([]int32, n)
	for i := range t.idom {
		t.idom[i] = -1
		t.rank[i] = -1
	}

	root := int32(net.ScanOut)
	if !reverse {
		root = int32(net.ScanIn)
	}

	// Topological order of the augmented graph from the root: Kahn over
	// the traversal direction.
	indeg := make([]int32, n)
	t.eachSucc(func(_, to int32) { indeg[to]++ })
	queue := []int32{root}
	t.order = make([]int32, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		t.rank[v] = int32(len(t.order))
		t.order = append(t.order, v)
		t.succOf(v, func(to int32) {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		})
	}

	// Cooper-Harvey-Kennedy: idom(v) = NCA over processed predecessors.
	t.idom[root] = root
	preds := make([][]int32, n)
	t.eachSucc(func(from, to int32) { preds[to] = append(preds[to], from) })
	for _, v := range t.order {
		if v == root {
			continue
		}
		cur := int32(-1)
		for _, p := range preds[v] {
			if t.idom[p] == -1 {
				continue // unreachable from root
			}
			if cur == -1 {
				cur = p
			} else {
				cur = t.nca(cur, p)
			}
		}
		t.idom[v] = cur
	}
	return t
}

// nca walks two nodes up the partial dominator tree to their nearest
// common ancestor, comparing by processing rank.
func (t *domTree) nca(a, b int32) int32 {
	for a != b {
		for t.rank[a] > t.rank[b] {
			a = t.idom[a]
		}
		for t.rank[b] > t.rank[a] {
			b = t.idom[b]
		}
	}
	return a
}

// eachSucc enumerates all traversal edges of the augmented graph.
func (t *domTree) eachSucc(fn func(from, to int32)) {
	for i := int32(0); i < int32(t.n); i++ {
		t.succOf(i, func(to int32) { fn(i, to) })
	}
}

// succOf enumerates the traversal successors of an augmented node: in
// reverse mode edges run against the scan direction, and every mux
// input edge (u → m, port p) is split as m → V → u (reverse) or
// u → V → m (forward).
func (t *domTree) succOf(v int32, fn func(int32)) {
	net := t.net
	if int(v) >= net.NumNodes() {
		// Virtual edge vertex: find its mux and port.
		m, p := t.virtualOwner(v)
		if t.reverse {
			fn(int32(net.Pred(m)[p]))
		} else {
			fn(int32(m))
		}
		return
	}
	id := rsn.NodeID(v)
	if t.reverse {
		if net.Node(id).Kind == rsn.KindMux {
			for p := range net.Pred(id) {
				fn(t.edgeNode(id, p))
			}
			return
		}
		for _, u := range net.Pred(id) {
			fn(int32(u))
		}
		return
	}
	for _, s := range net.Succ(id) {
		if net.Node(s).Kind == rsn.KindMux {
			for p, u := range net.Pred(s) {
				if u == id {
					fn(t.edgeNode(s, p))
				}
			}
			continue
		}
		fn(int32(s))
	}
}

// virtualOwner decodes a virtual vertex id into its mux and port.
func (t *domTree) virtualOwner(v int32) (rsn.NodeID, int) {
	k := v - int32(t.net.NumNodes())
	return t.vOwner[k], int(t.vPort[k])
}

// subtreeSums returns, for every augmented node, the sum of per[] over
// the real nodes in its dominator subtree (per is indexed by
// rsn.NodeID). Children precede parents when accumulated in reverse
// processing order.
func (t *domTree) subtreeSums(per []int64) []int64 {
	sums := make([]int64, t.n)
	for i := 0; i < t.net.NumNodes(); i++ {
		sums[i] = per[i]
	}
	for i := len(t.order) - 1; i >= 0; i-- {
		v := t.order[i]
		if d := t.idom[v]; d >= 0 && d != v {
			sums[d] += sums[v]
		}
	}
	return sums
}
