package faults_test

import (
	"testing"
	"testing/quick"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/ftrsn"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

// TestAnalyzeGraphMatchesTreeEngine: on series-parallel networks the
// dominator engine must reproduce the decomposition-tree engine exactly
// (damage, total, critical hits).
func TestAnalyzeGraphMatchesTreeEngine(t *testing.T) {
	nets := []*rsn.Network{
		fixture.PaperExample(),
		fixture.SIBChain(5),
		fixture.NestedSIBs(),
	}
	for _, net := range nets {
		opts := faults.DefaultOptions()
		tree, err := sptree.Build(net)
		if err != nil {
			t.Fatal(err)
		}
		sp := spec.FromNetwork(net, spec.DefaultCostModel)
		at, err := faults.Analyze(net, tree, sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := faults.AnalyzeGraph(net, sp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if at.TotalDamage != ag.TotalDamage {
			t.Errorf("%s: total %d (tree) vs %d (graph)", net.Name, at.TotalDamage, ag.TotalDamage)
		}
		for _, id := range net.Primitives() {
			if at.Damage[id] != ag.Damage[id] {
				t.Errorf("%s: damage(%s) = %d (tree) vs %d (graph)",
					net.Name, net.Node(id).Name, at.Damage[id], ag.Damage[id])
			}
			if at.CritHit[id] != ag.CritHit[id] {
				t.Errorf("%s: critHit(%s) = %v (tree) vs %v (graph)",
					net.Name, net.Node(id).Name, at.CritHit[id], ag.CritHit[id])
			}
		}
	}
}

// TestAnalyzeGraphMatchesTreeEngineRandom repeats the equivalence on
// random series-parallel networks with segment controls and coupling.
func TestAnalyzeGraphMatchesTreeEngineRandom(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 45, SegmentControls: true})
		opts := faults.Options{Combine: faults.CombineMax, SIBCoupling: true, CtrlCoupling: true}
		tree, err := sptree.Build(net)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sp := spec.FromNetwork(net, spec.DefaultCostModel)
		at, err := faults.Analyze(net, tree, sp, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ag, err := faults.AnalyzeGraph(net, sp, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, id := range net.Primitives() {
			if at.Damage[id] != ag.Damage[id] {
				t.Logf("seed %d: damage(%s) = %d (tree) vs %d (graph)",
					seed, net.Node(id).Name, at.Damage[id], ag.Damage[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeGraphMatchesReferenceRandom validates the dominator engine
// against the O(primitives·edges) reference on random networks.
func TestAnalyzeGraphMatchesReferenceRandom(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 40})
		opts := faults.DefaultOptions()
		sp := spec.FromNetwork(net, spec.DefaultCostModel)
		ag, err := faults.AnalyzeGraph(net, sp, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref := faults.ReferenceDamage(net, sp, opts)
		for _, id := range net.Primitives() {
			if ag.Damage[id] != ref[id] {
				t.Logf("seed %d: damage(%s) = %d (graph) vs %d (reference)",
					seed, net.Node(id).Name, ag.Damage[id], ref[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeGraphOnNonSeriesParallel is the engine's raison d'être:
// it analyzes the redundant fault-tolerant networks that the SP parser
// rejects, and must agree with the reachability reference there.
func TestAnalyzeGraphOnNonSeriesParallel(t *testing.T) {
	src := fixture.PaperExample()
	ft, _, err := ftrsn.Synthesize(src, spec.DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sptree.Build(ft); err == nil {
		t.Fatal("expected a non-SP network")
	}
	opts := faults.DefaultOptions()
	sp := spec.FromNetwork(ft, spec.DefaultCostModel)
	ag, err := faults.AnalyzeGraph(ft, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := faults.ReferenceDamage(ft, sp, opts)
	for _, id := range ft.Primitives() {
		if ag.Damage[id] != ref[id] {
			t.Errorf("damage(%s) = %d (graph) vs %d (reference)",
				ft.Node(id).Name, ag.Damage[id], ref[id])
		}
	}
	// The fault-tolerant structure keeps every single-fault damage to at
	// most one instrument's weights.
	for _, id := range ft.Primitives() {
		if ag.Damage[id] > 11 {
			t.Errorf("FT network has damage %d at %s, want <= 11", ag.Damage[id], ft.Node(id).Name)
		}
	}
}

// TestAnalyzeGraphOnNonSPRandom stresses the dominator engine on many
// transformed (non-SP) networks against the reference.
func TestAnalyzeGraphOnNonSPRandom(t *testing.T) {
	check := func(seed int64) bool {
		src := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 25})
		ft, _, err := ftrsn.Synthesize(src, spec.DefaultCostModel)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		opts := faults.DefaultOptions()
		sp := spec.FromNetwork(ft, spec.DefaultCostModel)
		ag, err := faults.AnalyzeGraph(ft, sp, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ref := faults.ReferenceDamage(ft, sp, opts)
		for _, id := range ft.Primitives() {
			if ag.Damage[id] != ref[id] {
				t.Logf("seed %d: damage(%s) = %d (graph) vs %d (reference)",
					seed, ft.Node(id).Name, ag.Damage[id], ref[id])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeGraphRejectsCyclic(t *testing.T) {
	net := rsn.NewNetwork("cyclic")
	si := net.AddNode(rsn.Node{Kind: rsn.KindScanIn, Name: "SI"})
	a := net.AddNode(rsn.Node{Kind: rsn.KindSegment, Name: "a", Length: 1})
	b := net.AddNode(rsn.Node{Kind: rsn.KindSegment, Name: "b", Length: 1})
	so := net.AddNode(rsn.Node{Kind: rsn.KindScanOut, Name: "SO"})
	net.AddEdge(si, a)
	net.AddEdge(a, b)
	net.AddEdge(b, a)
	net.AddEdge(b, so)
	sp := spec.New(net, spec.DefaultCostModel)
	if _, err := faults.AnalyzeGraph(net, sp, faults.DefaultOptions()); err == nil {
		t.Fatal("AnalyzeGraph accepted a cyclic graph")
	}
}
