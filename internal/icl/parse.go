package icl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rsnrobust/internal/rsn"
)

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("icl: syntax error")

// Parse reads a network description in the format emitted by Write.
// The result is structurally validated.
func Parse(r io.Reader) (*rsn.Network, error) {
	p := &parser{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p.lines = append(p.lines, strings.Fields(line))
		p.lineNos = append(p.lineNos, lineNo)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	head, err := p.nextLine()
	if err != nil {
		return nil, err
	}
	if len(head) != 2 || head[0] != "network" {
		return nil, p.errf("expected 'network <name>', got %q", strings.Join(head, " "))
	}
	b := rsn.NewBuilder(head[1])
	p.net = b.Network()
	stop, err := p.elements(b, "end")
	if err != nil {
		return nil, err
	}
	if stop[0] != "end" {
		return nil, p.errf("expected 'end', got %q", stop[0])
	}
	net := b.Finish()
	for _, fx := range p.ctrls {
		src := net.Lookup(fx.segName)
		if src == rsn.None {
			return nil, fmt.Errorf("%w: line %d: control segment %q not found", ErrSyntax, fx.line, fx.segName)
		}
		net.Node(fx.mux).Ctrl = rsn.Control{Source: src, Bit: fx.bit, Width: fx.wid}
	}
	if err := rsn.Validate(net); err != nil {
		return nil, err
	}
	return net, nil
}

type parser struct {
	lines   [][]string
	lineNos []int
	pos     int
	net     *rsn.Network
	ctrls   []ctrlFixup
}

type ctrlFixup struct {
	mux      rsn.NodeID
	segName  string
	bit, wid int
	line     int
}

func (p *parser) errf(format string, args ...any) error {
	line := 0
	if p.pos > 0 && p.pos-1 < len(p.lineNos) {
		line = p.lineNos[p.pos-1]
	}
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, line, fmt.Sprintf(format, args...))
}

func (p *parser) nextLine() ([]string, error) {
	if p.pos >= len(p.lines) {
		p.pos++
		return nil, fmt.Errorf("%w: unexpected end of input", ErrSyntax)
	}
	toks := p.lines[p.pos]
	p.pos++
	return toks, nil
}

// elements parses chain elements into b until a line starting with one
// of the stop tokens (or "}") appears; that line is consumed and
// returned.
func (p *parser) elements(b *rsn.Builder, stops ...string) ([]string, error) {
	for {
		toks, err := p.nextLine()
		if err != nil {
			return nil, err
		}
		if toks[0] == "}" {
			return toks, nil
		}
		stopped := false
		for _, s := range stops {
			if toks[0] == s {
				stopped = true
			}
		}
		if stopped {
			return toks, nil
		}
		switch toks[0] {
		case "segment":
			err = p.segment(b, toks)
		case "fork":
			err = p.fork(b, toks)
		case "sib":
			err = p.sib(b, toks)
		default:
			err = p.errf("unknown element %q", toks[0])
		}
		if err != nil {
			return nil, err
		}
	}
}

// segment <name> <length> [instrument ...] [hardened]
func (p *parser) segment(b *rsn.Builder, toks []string) error {
	if len(toks) < 3 {
		return p.errf("segment needs a name and a length")
	}
	length, err := strconv.Atoi(toks[2])
	if err != nil || length <= 0 {
		return p.errf("bad segment length %q", toks[2])
	}
	at, err := p.attrs(toks[3:])
	if err != nil {
		return err
	}
	id := b.Segment(toks[1], length, at.instr)
	p.net.Node(id).Hardened = at.hardened
	return nil
}

// fork <name> { branch { ... } ... } join <mux> <ctrl> [hardened]
func (p *parser) fork(b *rsn.Builder, toks []string) error {
	if len(toks) != 3 || toks[2] != "{" {
		return p.errf("expected 'fork <name> {'")
	}
	bs := b.ForkAny(toks[1])
	branches := 0
	for {
		line, err := p.nextLine()
		if err != nil {
			return err
		}
		switch line[0] {
		case "branch":
			if len(line) != 2 || line[1] != "{" {
				return p.errf("expected 'branch {'")
			}
			branches++
			if stop, err := p.elements(bs.NewBranch()); err != nil {
				return err
			} else if len(stop) != 1 || stop[0] != "}" {
				return p.errf("branch of fork %q must close with a bare '}'", toks[1])
			}
		case "}":
			if branches < 2 {
				return p.errf("fork %q needs at least two branches", toks[1])
			}
			if len(line) < 3 || line[1] != "join" {
				return p.errf("expected '} join <mux> ...' closing fork %q", toks[1])
			}
			return p.join(bs, line[2:])
		default:
			return p.errf("expected 'branch {' or '} join ...' in fork %q", toks[1])
		}
	}
}

// join clause tokens after "} join".
func (p *parser) join(bs *rsn.BranchSet, toks []string) error {
	if len(toks) < 2 {
		return p.errf("join needs a mux name and a control clause")
	}
	muxName := toks[0]
	rest := toks[1:]
	var fix *ctrlFixup
	switch rest[0] {
	case "external":
		rest = rest[1:]
	case "control":
		if len(rest) < 4 {
			return p.errf("control needs '<segment> <bit> <width>'")
		}
		bit, err1 := strconv.Atoi(rest[2])
		wid, err2 := strconv.Atoi(rest[3])
		if err1 != nil || err2 != nil {
			return p.errf("bad control bits %q %q", rest[2], rest[3])
		}
		fix = &ctrlFixup{segName: rest[1], bit: bit, wid: wid, line: p.lineNos[p.pos-1]}
		rest = rest[4:]
	default:
		return p.errf("expected 'external' or 'control', got %q", rest[0])
	}
	hardened := false
	for _, t := range rest {
		if t != "hardened" {
			return p.errf("unknown join attribute %q", t)
		}
		hardened = true
	}
	mux := bs.Join(muxName, rsn.External())
	p.net.Node(mux).Hardened = hardened
	if fix != nil {
		fix.mux = mux
		p.ctrls = append(p.ctrls, *fix)
	}
	return nil
}

// sib <name> { ... } [instrument ...] [hardenedreg] [hardenedmux]
func (p *parser) sib(b *rsn.Builder, toks []string) error {
	if len(toks) != 3 || toks[2] != "{" {
		return p.errf("expected 'sib <name> {'")
	}
	var closing []string
	var subErr error
	reg, mux := b.SIB(toks[1], nil, func(sb *rsn.Builder) {
		closing, subErr = p.elements(sb)
	})
	if subErr != nil {
		return subErr
	}
	if len(closing) == 0 || closing[0] != "}" {
		return p.errf("sib %q must close with '}'", toks[1])
	}
	at, err := p.attrs(closing[1:])
	if err != nil {
		return err
	}
	rn := p.net.Node(reg)
	rn.Instr = at.instr
	rn.Hardened = at.hreg
	p.net.Node(mux).Hardened = at.hmux
	return nil
}

type attrSet struct {
	instr      *rsn.Instrument
	hardened   bool
	hreg, hmux bool
}

// attrs parses trailing attributes: an optional instrument clause and
// hardening keywords.
func (p *parser) attrs(toks []string) (attrSet, error) {
	var at attrSet
	i := 0
	for i < len(toks) {
		switch toks[i] {
		case "instrument":
			if i+1 >= len(toks) {
				return at, p.errf("instrument needs a name")
			}
			at.instr = &rsn.Instrument{Name: toks[i+1]}
			i += 2
			for i+1 < len(toks) && (toks[i] == "obs" || toks[i] == "set") {
				v, err := strconv.ParseInt(toks[i+1], 10, 64)
				if err != nil || v < 0 {
					return at, p.errf("bad %s weight %q", toks[i], toks[i+1])
				}
				if toks[i] == "obs" {
					at.instr.DamageObs = v
				} else {
					at.instr.DamageSet = v
				}
				i += 2
			}
			for i < len(toks) && (toks[i] == "critobs" || toks[i] == "critset") {
				if toks[i] == "critobs" {
					at.instr.CriticalObs = true
				} else {
					at.instr.CriticalSet = true
				}
				i++
			}
		case "hardened":
			at.hardened = true
			i++
		case "hardenedreg":
			at.hreg = true
			i++
		case "hardenedmux":
			at.hmux = true
			i++
		default:
			return at, p.errf("unknown attribute %q", toks[i])
		}
	}
	return at, nil
}
