package icl_test

import (
	"os"

	"rsnrobust/internal/icl"
	"rsnrobust/internal/rsn"
)

// ExampleWrite serializes a small network in the textual ICL-like
// format; Parse reads the same format back.
func ExampleWrite() {
	b := rsn.NewBuilder("demo")
	b.SIB("s0", nil, func(sub *rsn.Builder) {
		sub.Segment("temp", 8, &rsn.Instrument{Name: "temp", DamageObs: 4})
	})
	if err := icl.Write(os.Stdout, b.Finish()); err != nil {
		panic(err)
	}
	// Output:
	// network demo
	//   sib s0 {
	//     segment temp 8 instrument temp obs 4 set 0
	//   }
	// end
}
