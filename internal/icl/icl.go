// Package icl reads and writes RSN descriptions in a compact textual
// format inspired by the IEEE 1687 Instrument Connectivity Language.
// The format is hierarchical and round-trip safe, including instrument
// damage weights, criticality marks, control sources and hardening:
//
//	network fig1
//	  segment c0 2
//	  fork f0 {
//	    branch {
//	      segment i1 4 instrument i1 obs 1 set 2 critset
//	    }
//	    branch {
//	      segment c1 2
//	    }
//	  } join m0 external hardened
//	  sib s1 {
//	    segment inner 8 instrument temp obs 5 set 0
//	  }
//	end
//
// A fork's join line carries the multiplexer; `control <segment> <bit>
// <width>` names a select source, `external` a robust off-network
// controller. SIB lines may end in `hardenedreg` and/or `hardenedmux`.
package icl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rsnrobust/internal/rsn"
)

// Write serializes a validated series-parallel network.
func Write(w io.Writer, net *rsn.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "network %s\n", net.Name)
	enc := &encoder{net: net, w: bw}
	start := net.Succ(net.ScanIn)[0]
	if _, err := enc.chain(start, 1); err != nil {
		return err
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

type encoder struct {
	net *rsn.Network
	w   *bufio.Writer
}

func (e *encoder) indent(depth int) {
	for i := 0; i < depth; i++ {
		e.w.WriteString("  ")
	}
}

// chain emits elements until it reaches a mux (returned) or scan-out.
func (e *encoder) chain(v rsn.NodeID, depth int) (rsn.NodeID, error) {
	for {
		nd := e.net.Node(v)
		switch nd.Kind {
		case rsn.KindScanOut, rsn.KindMux:
			return v, nil
		case rsn.KindSegment:
			e.indent(depth)
			fmt.Fprintf(e.w, "segment %s %d%s%s\n", nd.Name, nd.Length, instrSuffix(nd), hardSuffix(nd.Hardened, "hardened"))
			v = e.net.Succ(v)[0]
		case rsn.KindFanout:
			next, err := e.section(v, depth)
			if err != nil {
				return rsn.None, err
			}
			v = next
		default:
			return rsn.None, fmt.Errorf("icl: unexpected %s node %q", nd.Kind, nd.Name)
		}
	}
}

// section emits a fork/join or SIB starting at fanout f and returns the
// node following the section.
func (e *encoder) section(f rsn.NodeID, depth int) (rsn.NodeID, error) {
	join, err := e.findJoin(f)
	if err != nil {
		return rsn.None, err
	}
	jn := e.net.Node(join)
	if jn.SIB && jn.Partner != rsn.None {
		// SIB: fanout, port 0 bypass, port 1 subnet, register after mux.
		reg := jn.Partner
		rn := e.net.Node(reg)
		e.indent(depth)
		fmt.Fprintf(e.w, "sib %s {\n", rn.Name)
		preds := e.net.Pred(join)
		if len(preds) > 1 && preds[1] != f {
			head := e.net.Succ(f)[subnetHeadIndex(e.net, f, join)]
			if _, err := e.chain(head, depth+1); err != nil {
				return rsn.None, err
			}
		}
		e.indent(depth)
		fmt.Fprintf(e.w, "}%s%s%s\n", instrSuffix(rn),
			hardSuffix(rn.Hardened, "hardenedreg"), hardSuffix(jn.Hardened, "hardenedmux"))
		return e.net.Succ(reg)[0], nil
	}

	e.indent(depth)
	fmt.Fprintf(e.w, "fork %s {\n", e.net.Node(f).Name)
	// Emit branches in port order of the join.
	heads := branchHeads(e.net, f, join)
	for _, h := range heads {
		e.indent(depth + 1)
		fmt.Fprintln(e.w, "branch {")
		if h != rsn.None {
			if _, err := e.chain(h, depth+2); err != nil {
				return rsn.None, err
			}
		}
		e.indent(depth + 1)
		fmt.Fprintln(e.w, "}")
	}
	e.indent(depth)
	fmt.Fprintf(e.w, "} join %s %s%s\n", jn.Name, ctrlSuffix(e.net, jn), hardSuffix(jn.Hardened, "hardened"))
	return e.net.Succ(join)[0], nil
}

// findJoin locates the reconvergence mux of a fanout by walking its
// first branch with nesting accounting: every fanout opens a nested
// section, every mux closes one.
func (e *encoder) findJoin(f rsn.NodeID) (rsn.NodeID, error) {
	depth := 1
	v := e.net.Succ(f)[0]
	for {
		nd := e.net.Node(v)
		switch nd.Kind {
		case rsn.KindMux:
			depth--
			if depth == 0 {
				return v, nil
			}
		case rsn.KindFanout:
			depth++
		case rsn.KindSegment:
		default:
			return rsn.None, fmt.Errorf("icl: fanout %q never reconverges", e.net.Node(f).Name)
		}
		v = e.net.Succ(v)[0]
	}
}

// branchHeads returns the chain head of each join port (rsn.None for a
// bypass wire).
func branchHeads(net *rsn.Network, f, join rsn.NodeID) []rsn.NodeID {
	preds := net.Pred(join)
	heads := make([]rsn.NodeID, len(preds))
	used := map[rsn.NodeID]bool{}
	for p, tail := range preds {
		if tail == f {
			heads[p] = rsn.None
			continue
		}
		// Walk back from the tail to the fanout to find the head.
		heads[p] = headOfBranch(net, f, tail, used)
	}
	return heads
}

// headOfBranch finds the successor of f that leads to tail.
func headOfBranch(net *rsn.Network, f, tail rsn.NodeID, used map[rsn.NodeID]bool) rsn.NodeID {
	for _, h := range net.Succ(f) {
		if h == tail && net.Node(h).Kind == rsn.KindMux {
			continue // bypass edge handled by the caller
		}
		if used[h] {
			continue
		}
		if reachesWithin(net, h, tail, f) {
			used[h] = true
			return h
		}
	}
	return rsn.None
}

// reachesWithin reports whether start can reach goal without passing
// through block.
func reachesWithin(net *rsn.Network, start, goal, block rsn.NodeID) bool {
	if start == goal {
		return true
	}
	seen := map[rsn.NodeID]bool{start: true}
	stack := []rsn.NodeID{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range net.Succ(v) {
			if t == goal {
				return true
			}
			if t == block || seen[t] {
				continue
			}
			seen[t] = true
			stack = append(stack, t)
		}
	}
	return false
}

// subnetHeadIndex returns the successor index of f that starts the SIB
// subnet (the non-mux successor).
func subnetHeadIndex(net *rsn.Network, f, join rsn.NodeID) int {
	for i, h := range net.Succ(f) {
		if h != join {
			return i
		}
	}
	return 0
}

func instrSuffix(nd *rsn.Node) string {
	in := nd.Instr
	if in == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, " instrument %s obs %d set %d", in.Name, in.DamageObs, in.DamageSet)
	if in.CriticalObs {
		b.WriteString(" critobs")
	}
	if in.CriticalSet {
		b.WriteString(" critset")
	}
	return b.String()
}

func ctrlSuffix(net *rsn.Network, nd *rsn.Node) string {
	if nd.Ctrl.Source == rsn.None {
		return "external"
	}
	return fmt.Sprintf("control %s %d %d", net.Node(nd.Ctrl.Source).Name, nd.Ctrl.Bit, nd.Ctrl.Width)
}

func hardSuffix(hardened bool, kw string) string {
	if hardened {
		return " " + kw
	}
	return ""
}
