package icl

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseICL feeds arbitrary text to the parser. Any input that parses
// must validate, serialize, and re-parse to a structurally identical
// network (round-trip stability); no input may panic.
func FuzzParseICL(f *testing.F) {
	seeds := []string{
		"network a\n  segment s 4\nend",
		"network b\n  sib x {\n    segment i 8 instrument t obs 2 set 3 critobs\n  }\nend",
		"network c\n  fork f {\n    branch {\n      segment p 1\n    }\n    branch {\n    }\n  } join m external\nend",
		"network d\n  segment cfg 2\n  fork f {\n    branch {\n      segment q 2 hardened\n    }\n    branch {\n      segment r 3\n    }\n  } join m control cfg 0 2 hardened\nend",
		"network e\n  sib outer {\n    sib inner {\n      segment deep 5\n    } hardenedreg\n  } instrument oi obs 1 set 1 hardenedmux\nend",
		"garbage",
		"network incomplete\n  fork f {",
		"network x\nsegment s 0\nend",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		net, err := Parse(strings.NewReader(in))
		if err != nil {
			return // invalid input rejected: fine
		}
		var buf bytes.Buffer
		if err := Write(&buf, net); err != nil {
			t.Fatalf("parsed network fails to serialize: %v\ninput: %q", err, in)
		}
		again, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("serialized network fails to re-parse: %v\nserialized:\n%s", err, buf.String())
		}
		if net.NumNodes() != again.NumNodes() {
			t.Fatalf("round trip changed node count: %d -> %d", net.NumNodes(), again.NumNodes())
		}
	})
}
