package icl

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsn"
)

// roundTrip writes and re-parses a network, returning the copy.
func roundTrip(t *testing.T, net *rsn.Network) *rsn.Network {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, net); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, buf.String())
	}
	return got
}

// equalNetworks compares two networks structurally.
func equalNetworks(a, b *rsn.Network) string {
	if a.Name != b.Name {
		return "names differ"
	}
	if a.NumNodes() != b.NumNodes() {
		return "node counts differ"
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(rsn.NodeID(i)), b.Node(rsn.NodeID(i))
		if na.Kind != nb.Kind || na.Name != nb.Name || na.Length != nb.Length ||
			na.SIB != nb.SIB || na.Hardened != nb.Hardened ||
			na.Partner != nb.Partner || na.Ctrl != nb.Ctrl {
			return "node " + na.Name + " differs"
		}
		if (na.Instr == nil) != (nb.Instr == nil) {
			return "instrument presence differs at " + na.Name
		}
		if na.Instr != nil && *na.Instr != *nb.Instr {
			return "instrument differs at " + na.Name
		}
		sa, sb := a.Succ(rsn.NodeID(i)), b.Succ(rsn.NodeID(i))
		if len(sa) != len(sb) {
			return "edge counts differ at " + na.Name
		}
		for k := range sa {
			if sa[k] != sb[k] {
				return "edges differ at " + na.Name
			}
		}
	}
	return ""
}

func TestRoundTripFixtures(t *testing.T) {
	for _, net := range []*rsn.Network{
		fixture.PaperExample(),
		fixture.SIBChain(4),
		fixture.NestedSIBs(),
	} {
		got := roundTrip(t, net)
		if diff := equalNetworks(net, got); diff != "" {
			t.Errorf("%s: %s", net.Name, diff)
		}
	}
}

func TestRoundTripHardened(t *testing.T) {
	net := fixture.PaperExample()
	net.Node(net.Lookup("m0")).Hardened = true
	net.Node(net.Lookup("i1")).Hardened = true
	got := roundTrip(t, net)
	if !got.Node(got.Lookup("m0")).Hardened || !got.Node(got.Lookup("i1")).Hardened {
		t.Error("hardening marks lost in round trip")
	}
}

func TestRoundTripRandom(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 50, SegmentControls: true})
		var buf bytes.Buffer
		if err := Write(&buf, net); err != nil {
			t.Logf("seed %d: Write: %v", seed, err)
			return false
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("seed %d: Parse: %v", seed, err)
			return false
		}
		if diff := equalNetworks(net, got); diff != "" {
			t.Logf("seed %d: %s", seed, diff)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripBenchmark(t *testing.T) {
	net, err := benchnets.Generate("TreeBalanced")
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, net)
	if diff := equalNetworks(net, got); diff != "" {
		t.Error(diff)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"segment a 4",
		"network x\nsegment a 0\nend",
		"network x\nsegment a 4\nwhatever\nend",
		"network x\nfork f {\nbranch {\nsegment a 1\n}\n} join m external\nend",           // one branch
		"network x\nsegment a 1\nfork f {\nbranch {\n}\nbranch {\n}\n} join m bogus\nend", // bad ctrl
		"network x\nsegment a 1 instrument i obs -3\nend",
		"network x\nsegment a 1\nsib s {\nsegment b 1\n", // unterminated
	}
	for i, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: Parse accepted invalid input %q", i, in)
		}
	}
}

func TestParseComments(t *testing.T) {
	in := `# a comment
network c
  # indented comment
  segment a 4

  segment b 2 instrument x obs 3 set 4 critobs
end`
	net, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	bseg := net.Node(net.Lookup("b"))
	if bseg.Instr == nil || bseg.Instr.DamageObs != 3 || !bseg.Instr.CriticalObs {
		t.Errorf("instrument attributes wrong: %+v", bseg.Instr)
	}
}

func TestParseControlForwardReference(t *testing.T) {
	// The control segment appears after the fork in the file order used
	// here (inside a later element), exercising the fixup pass... and a
	// control source before the fork in path order:
	in := `network fw
  segment cfg 2
  fork f {
    branch {
      segment a 1
    }
    branch {
      segment b 1
    }
  } join m control cfg 0 2
end`
	net, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := net.Node(net.Lookup("m"))
	if m.Ctrl.Source != net.Lookup("cfg") || m.Ctrl.Width != 2 {
		t.Errorf("control fixup failed: %+v", m.Ctrl)
	}
	if _, err := Parse(strings.NewReader(strings.Replace(in, "control cfg", "control nosuch", 1))); err == nil {
		t.Error("Parse accepted a dangling control reference")
	}
}

func TestErrSyntaxWrapped(t *testing.T) {
	_, err := Parse(strings.NewReader("garbage"))
	if !errors.Is(err, ErrSyntax) {
		t.Fatalf("error %v does not wrap ErrSyntax", err)
	}
}
