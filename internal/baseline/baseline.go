// Package baseline provides reference optimizers and comparators for the
// selective-hardening problem:
//
//   - a greedy damage/cost-ratio heuristic whose prefix solutions trace
//     the convex hull of the Pareto front (the objectives are separable
//     sums, so greedy-by-ratio is the fractional-knapsack relaxation);
//   - exact constrained optima via 0/1-knapsack dynamic programming over
//     the integral cost axis (tractable whenever primitives × total cost
//     is moderate), used to calibrate how close the evolutionary fronts
//     come to optimal;
//   - a random-sampling front as the sanity-check lower bar;
//   - the hardware overhead of conventional full triple-modular
//     redundancy (TMR), the paper's state-of-the-art comparator.
package baseline

import (
	"math/bits"
	"math/rand"
	"sort"

	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/moea"
	"rsnrobust/internal/rsn"
)

// GreedyFront hardens primitives in decreasing damage-per-cost order and
// returns the n+1 prefix solutions (from nothing hardened to everything
// hardened). The result is sorted by increasing cost and is mutually
// nondominated.
func GreedyFront(a *faults.Analysis) []core.Solution {
	type item struct {
		id   rsn.NodeID
		d, c int64
	}
	items := make([]item, 0, len(a.Prims))
	for _, id := range a.Prims {
		items = append(items, item{id: id, d: a.Damage[id], c: a.Spec.Cost[id]})
	}
	// Decreasing d/c; free items (c == 0) first, zero-damage items last.
	sort.SliceStable(items, func(i, j int) bool {
		// Compare d_i/c_i > d_j/c_j without division: d_i*c_j > d_j*c_i,
		// in 128 bits — damage × cost products overflow int64 on big
		// nets (TotalDamage ~1e9 × areas ~1e10), which would flip the
		// sort. Zero costs sort as infinite ratio when damage > 0.
		hi, lo := bits.Mul64(uint64(items[i].d), uint64(items[j].c))
		hj, lj := bits.Mul64(uint64(items[j].d), uint64(items[i].c))
		if hi != hj {
			return hi > hj
		}
		if lo != lj {
			return lo > lj
		}
		return items[i].d > items[j].d
	})

	front := make([]core.Solution, 0, len(items)+1)
	mask := make([]bool, a.Net.NumNodes())
	var cost int64
	damage := a.TotalDamage
	appendSol := func() {
		cp := make([]bool, len(mask))
		copy(cp, mask)
		var hardened []rsn.NodeID
		for _, id := range a.Prims {
			if cp[id] {
				hardened = append(hardened, id)
			}
		}
		front = append(front, core.Solution{
			Hardened:        hardened,
			Mask:            cp,
			Cost:            cost,
			Damage:          damage,
			CriticalCovered: criticalCovered(a, cp),
		})
	}
	appendSol()
	for _, it := range items {
		mask[it.id] = true
		cost += it.c
		damage -= it.d
		appendSol()
	}
	return dedupe(front)
}

// dedupe removes dominated prefixes from the greedy staircase. The
// input has non-decreasing cost and non-increasing damage, so a prefix
// is dominated iff a later one has the same cost (strictly less damage)
// or it fails to reduce damage over its predecessor.
func dedupe(front []core.Solution) []core.Solution {
	out := front[:0]
	for _, s := range front {
		for len(out) > 0 && out[len(out)-1].Cost == s.Cost {
			out = out[:len(out)-1]
		}
		if len(out) > 0 && out[len(out)-1].Damage <= s.Damage {
			continue
		}
		out = append(out, s)
	}
	return out
}

func criticalCovered(a *faults.Analysis, mask []bool) bool {
	for _, id := range a.Prims {
		if a.CritHit[id] && !mask[id] {
			return false
		}
	}
	return true
}

// RandomFront samples random hardening masks at mixed densities and
// returns their nondominated subset — the sanity-check baseline any real
// optimizer must beat.
func RandomFront(a *faults.Analysis, seed int64, samples int) []core.Solution {
	rng := rand.New(rand.NewSource(seed))
	n := len(a.Prims)
	var pop []moea.Genome
	for s := 0; s < samples; s++ {
		g := moea.NewGenome(n)
		g.Randomize(rng, rng.Float64()*0.5, n)
		pop = append(pop, g)
	}
	var sols []core.Solution
	for _, g := range pop {
		mask := make([]bool, a.Net.NumNodes())
		var hardened []rsn.NodeID
		for i, id := range a.Prims {
			if g.Get(i) {
				mask[id] = true
				hardened = append(hardened, id)
			}
		}
		sols = append(sols, core.Solution{
			Hardened: hardened,
			Mask:     mask,
			Cost:     a.HardeningCost(mask),
			Damage:   a.ResidualDamage(mask),
		})
	}
	return paretoSolutions(sols)
}

// paretoSolutions filters solutions to the nondominated subset, sorted
// by cost.
func paretoSolutions(sols []core.Solution) []core.Solution {
	var front []core.Solution
	for i := range sols {
		dominated := false
		for j := range sols {
			if i == j {
				continue
			}
			if (sols[j].Cost < sols[i].Cost && sols[j].Damage <= sols[i].Damage) ||
				(sols[j].Cost <= sols[i].Cost && sols[j].Damage < sols[i].Damage) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, sols[i])
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Cost != front[j].Cost {
			return front[i].Cost < front[j].Cost
		}
		return front[i].Damage < front[j].Damage
	})
	// Drop duplicates.
	out := front[:0]
	for i, s := range front {
		if i > 0 && s.Cost == front[i-1].Cost && s.Damage == front[i-1].Damage {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Exact computes exact constrained optima of the separable
// selective-hardening problem by 0/1-knapsack dynamic programming over
// the cost axis. Construction is O(primitives × total cost) in time and
// O(total cost) in space.
type Exact struct {
	a *faults.Analysis
	// removed[c] is the maximum total damage removable with hardening
	// cost at most c.
	removed []int64
}

// ExactTractable reports whether the DP fits the given operation budget
// (primitives × (total cost + 1) <= maxOps).
func ExactTractable(a *faults.Analysis, maxOps int64) bool {
	return int64(len(a.Prims))*(a.Spec.MaxCost()+1) <= maxOps
}

// NewExact builds the DP table.
func NewExact(a *faults.Analysis) *Exact {
	maxCost := a.Spec.MaxCost()
	removed := make([]int64, maxCost+1)
	for _, id := range a.Prims {
		c, d := a.Spec.Cost[id], a.Damage[id]
		if d == 0 {
			continue
		}
		if c == 0 {
			// Free hardening: always taken.
			for b := int64(0); b <= maxCost; b++ {
				removed[b] += d
			}
			continue
		}
		for b := maxCost; b >= c; b-- {
			if v := removed[b-c] + d; v > removed[b] {
				removed[b] = v
			}
		}
	}
	return &Exact{a: a, removed: removed}
}

// MinDamageWithCostAtMost returns the optimal residual damage under a
// cost budget.
func (e *Exact) MinDamageWithCostAtMost(budget int64) int64 {
	if budget < 0 {
		return e.a.TotalDamage
	}
	if budget > int64(len(e.removed)-1) {
		budget = int64(len(e.removed) - 1)
	}
	return e.a.TotalDamage - e.removed[budget]
}

// MinCostWithDamageAtMost returns the minimum hardening cost that pushes
// the residual damage to at most limit; ok is false if even full
// hardening cannot (only possible for limit < 0).
func (e *Exact) MinCostWithDamageAtMost(limit int64) (cost int64, ok bool) {
	need := e.a.TotalDamage - limit
	for c := int64(0); c < int64(len(e.removed)); c++ {
		if e.removed[c] >= need {
			return c, true
		}
	}
	return 0, false
}

// TMROverhead returns the hardware overhead of protecting the entire
// network by triple modular redundancy, in the same cost units as the
// specification: every cell is triplicated (2× extra) and every
// primitive receives one voter of the given cost. This is the
// conventional fault-tolerance comparator of the paper's Section I.
func TMROverhead(a *faults.Analysis, voterCost int64) int64 {
	return 2*a.Spec.MaxCost() + voterCost*int64(len(a.Prims))
}
