package baseline

import (
	"math/bits"
	"testing"
	"testing/quick"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

func analyze(t testing.TB, net *rsn.Network) *faults.Analysis {
	t.Helper()
	tree, err := sptree.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	a, err := faults.Analyze(net, tree, sp, faults.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGreedyFrontShape(t *testing.T) {
	a := analyze(t, fixture.PaperExample())
	front := GreedyFront(a)
	if len(front) < 2 {
		t.Fatalf("front too small: %d", len(front))
	}
	if front[0].Cost != 0 || front[0].Damage != a.TotalDamage {
		t.Errorf("first solution = (%d,%d), want (0,%d)", front[0].Cost, front[0].Damage, a.TotalDamage)
	}
	last := front[len(front)-1]
	if last.Damage != 0 {
		t.Errorf("last solution damage = %d, want 0", last.Damage)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cost <= front[i-1].Cost {
			t.Errorf("cost not strictly increasing at %d", i)
		}
		if front[i].Damage >= front[i-1].Damage {
			t.Errorf("damage not strictly decreasing at %d", i)
		}
	}
	// Objectives must recompute from the masks.
	for _, s := range front {
		if a.ResidualDamage(s.Mask) != s.Damage || a.HardeningCost(s.Mask) != s.Cost {
			t.Errorf("solution bookkeeping inconsistent: %+v", s)
		}
	}
}

func TestExactMatchesBruteForceOnTinyNetworks(t *testing.T) {
	// Property: DP optima equal exhaustive-enumeration optima for tiny
	// random networks.
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 10})
		a := analyze(t, net)
		n := len(a.Prims)
		if n > 16 {
			return true // keep enumeration cheap
		}
		e := NewExact(a)
		maxCost := a.Spec.MaxCost()
		// Enumerate all subsets.
		type point struct{ cost, damage int64 }
		best := map[int64]int64{} // cost budget -> min damage (filled below)
		points := make([]point, 0, 1<<n)
		for m := 0; m < 1<<n; m++ {
			var cost, removed int64
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					cost += a.Spec.Cost[a.Prims[i]]
					removed += a.Damage[a.Prims[i]]
				}
			}
			points = append(points, point{cost, a.TotalDamage - removed})
		}
		_ = best
		for _, budget := range []int64{0, maxCost / 10, maxCost / 3, maxCost} {
			var bruteMin int64 = a.TotalDamage
			for _, p := range points {
				if p.cost <= budget && p.damage < bruteMin {
					bruteMin = p.damage
				}
			}
			if got := e.MinDamageWithCostAtMost(budget); got != bruteMin {
				t.Logf("seed %d budget %d: DP %d, brute force %d", seed, budget, got, bruteMin)
				return false
			}
		}
		for _, limit := range []int64{0, a.TotalDamage / 10, a.TotalDamage / 2, a.TotalDamage} {
			var bruteCost int64 = -1
			for _, p := range points {
				if p.damage <= limit && (bruteCost < 0 || p.cost < bruteCost) {
					bruteCost = p.cost
				}
			}
			got, ok := e.MinCostWithDamageAtMost(limit)
			if !ok {
				t.Logf("seed %d limit %d: DP found no solution", seed, limit)
				return false
			}
			if got != bruteCost {
				t.Logf("seed %d limit %d: DP cost %d, brute force %d", seed, limit, got, bruteCost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	// Property: the exact DP is at least as good as any greedy prefix.
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 40})
		a := analyze(t, net)
		e := NewExact(a)
		for _, s := range GreedyFront(a) {
			if opt := e.MinDamageWithCostAtMost(s.Cost); opt > s.Damage {
				t.Logf("seed %d: greedy (%d,%d) beats DP optimum %d", seed, s.Cost, s.Damage, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFrontNondominated(t *testing.T) {
	a := analyze(t, fixture.SIBChain(8))
	front := RandomFront(a, 3, 200)
	if len(front) == 0 {
		t.Fatal("empty random front")
	}
	for i := range front {
		for j := range front {
			if i == j {
				continue
			}
			if front[j].Cost <= front[i].Cost && front[j].Damage <= front[i].Damage &&
				(front[j].Cost < front[i].Cost || front[j].Damage < front[i].Damage) {
				t.Fatalf("random front member %d dominated by %d", i, j)
			}
		}
	}
}

func TestExactTractable(t *testing.T) {
	a := analyze(t, fixture.PaperExample())
	if !ExactTractable(a, 1<<20) {
		t.Error("tiny instance reported intractable")
	}
	if ExactTractable(a, 1) {
		t.Error("instance fits in 1 operation")
	}
}

func TestTMROverheadExceedsSelective(t *testing.T) {
	a := analyze(t, fixture.SIBChain(10))
	tmr := TMROverhead(a, 1)
	if tmr <= a.Spec.MaxCost() {
		t.Errorf("TMR overhead %d not above full hardening cost %d", tmr, a.Spec.MaxCost())
	}
	// Selective hardening at 10% cost is far below TMR.
	e := NewExact(a)
	if d := e.MinDamageWithCostAtMost(a.Spec.MaxCost() / 10); d >= a.TotalDamage {
		t.Errorf("10%% budget removed no damage (%d of %d)", d, a.TotalDamage)
	}
}

var _ = core.Solution{} // keep the core dependency explicit

// TestGreedyFrontRatioOverflow is the regression test for the int64
// overflow in the greedy ratio sort: damage × cost products at the
// 1e9 × 1e9.5 scale exceed 2^63 and used to wrap, flipping the order.
// Item A (d=3.1e9, c=4e9, ratio 0.775) beats item B (d=2.3e9, c=3e9,
// ratio 0.767), but dA·cB = 9.3e18 wraps negative while dB·cA = 9.2e18
// stays positive, so the wrapped comparison sorted B first.
func TestGreedyFrontRatioOverflow(t *testing.T) {
	b := rsn.NewBuilder("overflow")
	b.Segment("A", 1, &rsn.Instrument{Name: "A", DamageObs: 1})
	b.Segment("B", 1, &rsn.Instrument{Name: "B", DamageObs: 1})
	net := b.Finish()
	a := analyze(t, net)
	if len(a.Prims) != 2 {
		t.Fatalf("fixture has %d prims, want 2", len(a.Prims))
	}
	idA, idB := net.Lookup("A"), net.Lookup("B")
	const (
		dA, cA = int64(3_100_000_000), int64(4_000_000_000)
		dB, cB = int64(2_300_000_000), int64(3_000_000_000)
	)
	// The products must actually overflow int64 for the test to bite.
	if hi, lo := bits.Mul64(uint64(dA), uint64(cB)); hi != 0 || lo < 1<<63 {
		t.Fatal("fixture products sized wrong: want a product in (2^63, 2^64)")
	}
	a.Damage[idA], a.Spec.Cost[idA] = dA, cA
	a.Damage[idB], a.Spec.Cost[idB] = dB, cB
	a.TotalDamage = dA + dB

	front := GreedyFront(a)
	if len(front) != 3 {
		t.Fatalf("front has %d solutions, want 3", len(front))
	}
	// The better-ratio item A must be hardened first.
	if !front[1].Mask[idA] || front[1].Mask[idB] {
		t.Errorf("first greedy pick hardened B (ratio %.3f) before A (ratio %.3f)",
			float64(dB)/float64(cB), float64(dA)/float64(cA))
	}
	if front[1].Cost != cA || front[1].Damage != dB {
		t.Errorf("front[1] = (%d,%d), want (%d,%d)", front[1].Cost, front[1].Damage, cA, dB)
	}
}

// TestGreedyFrontInvariants checks the greedy staircase on random
// networks: strictly increasing cost, strictly decreasing damage (so
// the output is mutually nondominated), endpoints at (0, TotalDamage)
// and (≤MaxCost, 0), and objectives that recompute from the masks.
func TestGreedyFrontInvariants(t *testing.T) {
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 40, SegmentControls: true})
		a := analyze(t, net)
		front := GreedyFront(a)
		if len(front) == 0 {
			t.Log("empty front")
			return false
		}
		first, last := front[0], front[len(front)-1]
		if first.Cost != 0 || first.Damage != a.TotalDamage {
			t.Logf("seed %d: first = (%d,%d), want (0,%d)", seed, first.Cost, first.Damage, a.TotalDamage)
			return false
		}
		if last.Damage != 0 {
			t.Logf("seed %d: last damage = %d, want 0 (full-hardening floor)", seed, last.Damage)
			return false
		}
		if last.Cost > a.MaxCost() {
			t.Logf("seed %d: last cost %d exceeds MaxCost %d", seed, last.Cost, a.MaxCost())
			return false
		}
		for i := 1; i < len(front); i++ {
			if front[i].Cost <= front[i-1].Cost || front[i].Damage >= front[i-1].Damage {
				t.Logf("seed %d: staircase violated at %d: (%d,%d) after (%d,%d)", seed, i,
					front[i].Cost, front[i].Damage, front[i-1].Cost, front[i-1].Damage)
				return false
			}
		}
		// Strict monotonicity in both objectives ⇒ mutually nondominated;
		// cross-check against the generic dominance filter anyway.
		if got := paretoSolutions(front); len(got) != len(front) {
			t.Logf("seed %d: %d of %d greedy solutions dominated", seed, len(front)-len(got), len(front))
			return false
		}
		for _, s := range front {
			if a.ResidualDamage(s.Mask) != s.Damage || a.HardeningCost(s.Mask) != s.Cost {
				t.Logf("seed %d: bookkeeping inconsistent: %+v", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDedupe exercises the staircase deduper directly: equal-cost
// prefixes keep only the last (least damage), prefixes that fail to
// reduce damage are dropped.
func TestDedupe(t *testing.T) {
	mk := func(cost, damage int64) core.Solution { return core.Solution{Cost: cost, Damage: damage} }
	in := []core.Solution{
		mk(0, 100),
		mk(0, 90),  // same cost, less damage: replaces the previous
		mk(5, 90),  // more cost, same damage: dominated, dropped
		mk(5, 80),  // same cost as the dropped one: kept
		mk(7, 80),  // no damage reduction: dropped
		mk(9, 10),
		mk(9, 10),  // exact duplicate: dropped
		mk(12, 0),
	}
	want := []core.Solution{mk(0, 90), mk(5, 80), mk(9, 10), mk(12, 0)}
	got := dedupe(in)
	if len(got) != len(want) {
		t.Fatalf("dedupe returned %d solutions, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Cost != want[i].Cost || got[i].Damage != want[i].Damage {
			t.Errorf("dedupe[%d] = (%d,%d), want (%d,%d)", i, got[i].Cost, got[i].Damage, want[i].Cost, want[i].Damage)
		}
	}
}
