package baseline

import (
	"testing"
	"testing/quick"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

func analyze(t testing.TB, net *rsn.Network) *faults.Analysis {
	t.Helper()
	tree, err := sptree.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	a, err := faults.Analyze(net, tree, sp, faults.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGreedyFrontShape(t *testing.T) {
	a := analyze(t, fixture.PaperExample())
	front := GreedyFront(a)
	if len(front) < 2 {
		t.Fatalf("front too small: %d", len(front))
	}
	if front[0].Cost != 0 || front[0].Damage != a.TotalDamage {
		t.Errorf("first solution = (%d,%d), want (0,%d)", front[0].Cost, front[0].Damage, a.TotalDamage)
	}
	last := front[len(front)-1]
	if last.Damage != 0 {
		t.Errorf("last solution damage = %d, want 0", last.Damage)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cost <= front[i-1].Cost {
			t.Errorf("cost not strictly increasing at %d", i)
		}
		if front[i].Damage >= front[i-1].Damage {
			t.Errorf("damage not strictly decreasing at %d", i)
		}
	}
	// Objectives must recompute from the masks.
	for _, s := range front {
		if a.ResidualDamage(s.Mask) != s.Damage || a.HardeningCost(s.Mask) != s.Cost {
			t.Errorf("solution bookkeeping inconsistent: %+v", s)
		}
	}
}

func TestExactMatchesBruteForceOnTinyNetworks(t *testing.T) {
	// Property: DP optima equal exhaustive-enumeration optima for tiny
	// random networks.
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 10})
		a := analyze(t, net)
		n := len(a.Prims)
		if n > 16 {
			return true // keep enumeration cheap
		}
		e := NewExact(a)
		maxCost := a.Spec.MaxCost()
		// Enumerate all subsets.
		type point struct{ cost, damage int64 }
		best := map[int64]int64{} // cost budget -> min damage (filled below)
		points := make([]point, 0, 1<<n)
		for m := 0; m < 1<<n; m++ {
			var cost, removed int64
			for i := 0; i < n; i++ {
				if m&(1<<i) != 0 {
					cost += a.Spec.Cost[a.Prims[i]]
					removed += a.Damage[a.Prims[i]]
				}
			}
			points = append(points, point{cost, a.TotalDamage - removed})
		}
		_ = best
		for _, budget := range []int64{0, maxCost / 10, maxCost / 3, maxCost} {
			var bruteMin int64 = a.TotalDamage
			for _, p := range points {
				if p.cost <= budget && p.damage < bruteMin {
					bruteMin = p.damage
				}
			}
			if got := e.MinDamageWithCostAtMost(budget); got != bruteMin {
				t.Logf("seed %d budget %d: DP %d, brute force %d", seed, budget, got, bruteMin)
				return false
			}
		}
		for _, limit := range []int64{0, a.TotalDamage / 10, a.TotalDamage / 2, a.TotalDamage} {
			var bruteCost int64 = -1
			for _, p := range points {
				if p.damage <= limit && (bruteCost < 0 || p.cost < bruteCost) {
					bruteCost = p.cost
				}
			}
			got, ok := e.MinCostWithDamageAtMost(limit)
			if !ok {
				t.Logf("seed %d limit %d: DP found no solution", seed, limit)
				return false
			}
			if got != bruteCost {
				t.Logf("seed %d limit %d: DP cost %d, brute force %d", seed, limit, got, bruteCost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	// Property: the exact DP is at least as good as any greedy prefix.
	check := func(seed int64) bool {
		net := benchnets.Random(benchnets.RandomOptions{Seed: seed, TargetPrims: 40})
		a := analyze(t, net)
		e := NewExact(a)
		for _, s := range GreedyFront(a) {
			if opt := e.MinDamageWithCostAtMost(s.Cost); opt > s.Damage {
				t.Logf("seed %d: greedy (%d,%d) beats DP optimum %d", seed, s.Cost, s.Damage, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFrontNondominated(t *testing.T) {
	a := analyze(t, fixture.SIBChain(8))
	front := RandomFront(a, 3, 200)
	if len(front) == 0 {
		t.Fatal("empty random front")
	}
	for i := range front {
		for j := range front {
			if i == j {
				continue
			}
			if front[j].Cost <= front[i].Cost && front[j].Damage <= front[i].Damage &&
				(front[j].Cost < front[i].Cost || front[j].Damage < front[i].Damage) {
				t.Fatalf("random front member %d dominated by %d", i, j)
			}
		}
	}
}

func TestExactTractable(t *testing.T) {
	a := analyze(t, fixture.PaperExample())
	if !ExactTractable(a, 1<<20) {
		t.Error("tiny instance reported intractable")
	}
	if ExactTractable(a, 1) {
		t.Error("instance fits in 1 operation")
	}
}

func TestTMROverheadExceedsSelective(t *testing.T) {
	a := analyze(t, fixture.SIBChain(10))
	tmr := TMROverhead(a, 1)
	if tmr <= a.Spec.MaxCost() {
		t.Errorf("TMR overhead %d not above full hardening cost %d", tmr, a.Spec.MaxCost())
	}
	// Selective hardening at 10% cost is far below TMR.
	e := NewExact(a)
	if d := e.MinDamageWithCostAtMost(a.Spec.MaxCost() / 10); d >= a.TotalDamage {
		t.Errorf("10%% budget removed no damage (%d of %d)", d, a.TotalDamage)
	}
}

var _ = core.Solution{} // keep the core dependency explicit
