package baseline_test

import (
	"fmt"

	"rsnrobust/internal/baseline"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

// ExampleNewExact computes exact constrained optima of the
// selective-hardening problem by knapsack dynamic programming — the
// calibration baseline for the evolutionary fronts.
func ExampleNewExact() {
	net := fixture.PaperExample()
	tree, _ := sptree.Build(net)
	sp := spec.FromNetwork(net, spec.DefaultCostModel)
	a, _ := faults.Analyze(net, tree, sp, faults.DefaultOptions())

	e := baseline.NewExact(a)
	cost, _ := e.MinCostWithDamageAtMost(a.TotalDamage / 10)
	fmt.Printf("min cost for damage<=10%%: %d\n", cost)
	fmt.Printf("min damage for cost<=10 units: %d\n", e.MinDamageWithCostAtMost(10))
	// Output:
	// min cost for damage<=10%: 14
	// min damage for cost<=10 units: 18
}
