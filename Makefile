# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci vet lint build test race determinism serve-smoke chaos chaos-fleet chaos-cache fuzz bench bench-smoke benchjson bench-compare clean

ci: vet lint build race determinism serve-smoke chaos-fleet chaos-cache bench-compare

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is pinned and fetched through
# the module proxy via `go run`; on an offline builder the fetch fails,
# so the target degrades to a no-op with a notice rather than breaking
# `make ci` (vet has already run by then).
STATICCHECK ?= honnef.co/go/tools/cmd/staticcheck@2024.1.1

lint:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./... ; \
	else \
		echo "lint: staticcheck unavailable (offline builder?); falling back to go vet" ; \
		$(GO) vet ./... ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Determinism gate: identical fronts, picks and evaluation counts at
# every worker count, scheduler job count, island count, with the
# evaluation cache on or off, with incremental (delta) evaluation
# against the full-evaluation oracle, across checkpoint/resume
# boundaries, and under injected faults. WorkerInvariance also matches
# the island-count invariance matrix (islands x workers).
determinism:
	$(GO) test -run 'WorkerDeterminism|WorkerInvariance|RunSetDeterminism|MemoOracle|DeltaOracle|ResumeEquivalence|ChaosGraceful' ./internal/core ./internal/moea ./internal/chaos ./cmd/rsnharden

# Service smoke gate: boot rsnserve on a loopback port and drive the
# end-to-end battery (analyze, harden, cache hit, deadline truncation,
# concurrent burst, metrics) through the real HTTP stack.
serve-smoke:
	$(GO) run ./cmd/rsnserve -selftest

# Chaos gate: the fault-injection suite (panics, cancellation, delays,
# corrupted checkpoints, crash-recovery drills) under the race
# detector.
chaos:
	$(GO) test -race ./internal/chaos

# Fleet chaos gate: the coordinator's dispatch/retry/breaker drills and
# the checkpoint-migration kill drills — including the cross-process
# SIGKILL drill in cmd/rsnserve — under the race detector. The run
# regex keeps the gate targeted; `make race` still covers everything.
chaos-fleet:
	$(GO) test -race -run 'Proxy|Breaker|Dispatch|Fleet|Migration|HalfOpen|NoHealthy|Trace|Analyze|Coordinator' ./internal/chaos ./internal/fleet ./cmd/rsnserve

# Fleet cache gate: the shared result-cache drills under the race
# detector — L1 repeats (plain, streamed, and after a SIGKILL-forced
# migration), cache-affinity routing and rendezvous resharding, the
# registry clamp/health regressions, Retry-After parsing, and the
# worker-side cache-key/disabled-cache semantics.
chaos-cache:
	$(GO) test -race -run 'FleetCache|Rendezvous|Affinity|RegistryMark|RetryAfter|ResultCacheDisabled|CacheKey' ./internal/fleet ./internal/serve

# Short fuzz pass over the hostile-input decoders: the ICL parser and
# the checkpoint codec.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParseICL -fuzztime=30s ./internal/icl
	$(GO) test -run=NONE -fuzz=FuzzCheckpointDecode -fuzztime=30s ./internal/moea

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One-command perf smoke: every Table I row once at the reduced bench
# budget, to spot regressions before committing.
bench-smoke:
	$(GO) test -run=NONE -bench=Table1 -benchtime=1x .

# Regenerate the committed machine-readable benchmark summary
# (validated by TestBenchJSONArtifact). -jobs 1 keeps the per-row
# evolve_ms serial and therefore comparable across artifact versions.
benchjson:
	$(GO) run ./cmd/table1 -quick -maxprims 60000 -jobs 1 -benchjson BENCH_5.json

# Fail if any shared 2-objective row's evolve_ms regressed >15% vs the
# previous committed artifact (K-objective rows are excluded from the
# gate by their "objectives" tag).
bench-compare:
	$(GO) run ./cmd/benchdiff -threshold 15 BENCH_4.json BENCH_5.json

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
