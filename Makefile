# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci vet build test race determinism bench bench-smoke benchjson bench-compare clean

ci: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Determinism gate: identical fronts, picks and evaluation counts at
# every worker count, scheduler job count, and with the evaluation
# cache on or off.
determinism:
	$(GO) test -run 'WorkerDeterminism|WorkerInvariance|RunSetDeterminism|MemoOracle' ./internal/core ./internal/moea

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One-command perf smoke: every Table I row once at the reduced bench
# budget, to spot regressions before committing.
bench-smoke:
	$(GO) test -run=NONE -bench=Table1 -benchtime=1x .

# Regenerate the committed machine-readable benchmark summary
# (validated by TestBenchJSONArtifact). -jobs 1 keeps the per-row
# evolve_ms serial and therefore comparable across artifact versions.
benchjson:
	$(GO) run ./cmd/table1 -quick -maxprims 60000 -jobs 1 -benchjson BENCH_3.json

# Fail if any shared row's evolve_ms regressed >15% vs the previous
# committed artifact.
bench-compare:
	$(GO) run ./cmd/benchdiff -threshold 15 BENCH_2.json BENCH_3.json

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
