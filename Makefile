# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci vet build test race bench benchjson clean

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Regenerate the committed machine-readable benchmark summary
# (validated by TestBenchJSONArtifact).
benchjson:
	$(GO) run ./cmd/table1 -quick -maxprims 60000 -benchjson BENCH_1.json

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
