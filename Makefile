# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci vet build test race determinism bench bench-smoke benchjson clean

ci: vet build race determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Determinism gate: identical fronts, picks and evaluation counts at
# workers=1 and workers=4 on a mid-size Table I benchmark.
determinism:
	$(GO) test -run 'WorkerDeterminism|WorkerInvariance' ./internal/core ./internal/moea

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One-command perf smoke: every Table I row once at the reduced bench
# budget, to spot regressions before committing.
bench-smoke:
	$(GO) test -run=NONE -bench=Table1 -benchtime=1x .

# Regenerate the committed machine-readable benchmark summary
# (validated by TestBenchJSONArtifact).
benchjson:
	$(GO) run ./cmd/table1 -quick -maxprims 60000 -benchjson BENCH_2.json

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
