package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rsnrobust/internal/moea"
)

// TestMain doubles the test binary as the rsnharden binary: when
// re-exec'd with RSNHARDEN_BE_MAIN=1 it runs main() on its own flags.
// The subprocess tests below use this to exercise the real CLI —
// signal handling, checkpoint files, exact stdout — without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("RSNHARDEN_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runCLI re-execs the test binary as rsnharden and returns its stdout.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RSNHARDEN_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("rsnharden %v: %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

// TestResumeEquivalenceCLI is the end-to-end resume gate: a run
// resumed from a checkpoint file must print stdout byte-identical to
// the uninterrupted run, at any worker count. The checkpoint comes
// from a shorter-budget run — the trajectory is a prefix of the full
// run's, since the budget only bounds the loop.
func TestResumeEquivalenceCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	full := runCLI(t, "-name", "TreeFlat", "-generations", "25", "-seed", "3")
	runCLI(t, "-name", "TreeFlat", "-generations", "12", "-seed", "3",
		"-checkpoint", ckpt, "-checkpoint-every", "5")
	for _, workers := range []string{"1", "2"} {
		resumed := runCLI(t, "-name", "TreeFlat", "-generations", "25", "-seed", "3",
			"-resume", ckpt, "-workers", workers)
		if resumed != full {
			t.Errorf("workers=%s: resumed stdout differs from uninterrupted run\n got:\n%s\nwant:\n%s",
				workers, resumed, full)
		}
	}
	if strings.Contains(full, "interrupted") {
		t.Errorf("uninterrupted run printed an interrupted line:\n%s", full)
	}
}

// TestThreeObjectivesGoldenCLI pins the shipped 3-objective scenario
// (damage × cost × test time on TreeFlat) to a golden stdout: the
// objectives line, the Table-I-style constrained picks, and the named
// per-objective front table must reproduce byte for byte, at any
// worker count.
func TestThreeObjectivesGoldenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "three_objectives_treeflat.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"1", "2"} {
		got := runCLI(t, "-name", "TreeFlat", "-generations", "25", "-seed", "3",
			"-objectives", "damage,cost,test_time", "-front", "-workers", workers)
		if got != string(want) {
			t.Errorf("workers=%s: 3-objective stdout deviates from golden\n got:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
	// A permuted spelling canonicalizes to the same run.
	if got := runCLI(t, "-name", "TreeFlat", "-generations", "25", "-seed", "3",
		"-objectives", "test_time,cost,damage", "-front"); got != string(want) {
		t.Errorf("permuted objective spelling deviates from golden\n got:\n%s", got)
	}
}

// TestSIGINTWritesCheckpoint interrupts a live run with the real
// signal: the process must drain at a generation boundary, write a
// loadable checkpoint, print the partial-result summary with the
// interrupted marker, and exit zero.
func TestSIGINTWritesCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cmd := exec.Command(os.Args[0],
		"-name", "TreeFlat", "-generations", "500000", "-seed", "3",
		"-checkpoint", ckpt, "-checkpoint-every", "1")
	cmd.Env = append(os.Environ(), "RSNHARDEN_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first periodic checkpoint so the interrupt lands
	// mid-optimization, then signal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared within 30s\nstderr: %s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted run exited with %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("interrupted run did not drain within 30s")
	}
	out := stdout.String()
	if !strings.Contains(out, "interrupted    true") {
		t.Errorf("partial-result summary lacks the interrupted marker:\n%s", out)
	}
	cp, err := moea.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint written on SIGINT does not load: %v", err)
	}
	if cp.Generation < 1 || len(cp.Pop) == 0 {
		t.Errorf("checkpoint is not a usable state: generation %d, population %d", cp.Generation, len(cp.Pop))
	}
}
