package main

import (
	"path/filepath"
	"testing"
	"time"
)

// TestValidateFlags pins the up-front rejection of flag combinations
// that would otherwise fail late or silently diverge.
func TestValidateFlags(t *testing.T) {
	dir := t.TempDir()
	ok := runConfig{seeds: 1, checkpointEvery: 10}
	cases := []struct {
		name    string
		mut     func(runConfig) runConfig
		wantErr bool
	}{
		{"defaults", func(c runConfig) runConfig { return c }, false},
		{"checkpoint-into-writable-dir", func(c runConfig) runConfig {
			c.checkpoint = filepath.Join(dir, "run.ckpt")
			return c
		}, false},
		{"resume-single-seed", func(c runConfig) runConfig { c.resume = "run.ckpt"; return c }, false},
		{"sweep-with-deadline", func(c runConfig) runConfig {
			c.seeds, c.deadline = 4, time.Minute
			return c
		}, false},
		{"negative-jobs", func(c runConfig) runConfig { c.jobs = -1; return c }, true},
		{"negative-workers", func(c runConfig) runConfig { c.workers = -3; return c }, true},
		{"zero-seeds", func(c runConfig) runConfig { c.seeds = 0; return c }, true},
		{"zero-checkpoint-every", func(c runConfig) runConfig { c.checkpointEvery = 0; return c }, true},
		{"negative-deadline", func(c runConfig) runConfig { c.deadline = -time.Second; return c }, true},
		{"resume-with-multi-seed", func(c runConfig) runConfig {
			c.resume, c.seeds = "run.ckpt", 2
			return c
		}, true},
		{"resume-with-stagnation", func(c runConfig) runConfig {
			c.resume, c.stagnation = "run.ckpt", 50
			return c
		}, true},
		{"checkpoint-with-multi-seed", func(c runConfig) runConfig {
			c.checkpoint, c.seeds = filepath.Join(dir, "run.ckpt"), 2
			return c
		}, true},
		{"checkpoint-into-missing-dir", func(c runConfig) runConfig {
			c.checkpoint = filepath.Join(dir, "no-such-subdir", "run.ckpt")
			return c
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.mut(ok))
			if (err != nil) != tc.wantErr {
				t.Errorf("validateFlags: err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}
