package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// runConfig collects the flag values whose combinations need
// validating before any work starts: resume/checkpoint wiring, pool
// sizes and deadlines. Keeping it a plain struct makes the rules
// table-testable without touching the flag package.
type runConfig struct {
	seeds           int
	jobs            int
	workers         int
	stagnation      int
	checkpoint      string
	checkpointEvery int
	resume          string
	deadline        time.Duration
}

// validateFlags rejects flag combinations that would fail late or
// silently misbehave: negative pool sizes, resuming a multi-seed
// sweep from a single-run checkpoint, checkpointing into a directory
// we cannot write, and resume combined with early stopping (the
// stagnation window restarts empty, so the resumed trajectory would
// diverge from the uninterrupted run).
func validateFlags(c runConfig) error {
	if c.jobs < 0 {
		return fmt.Errorf("-jobs must be >= 0, got %d", c.jobs)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	}
	if c.seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", c.seeds)
	}
	if c.checkpointEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", c.checkpointEvery)
	}
	if c.deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0, got %v", c.deadline)
	}
	if c.resume != "" {
		if c.seeds > 1 {
			return errors.New("-resume holds the state of one run and cannot be combined with -seeds > 1")
		}
		if c.stagnation > 0 {
			return errors.New("-resume cannot be combined with -stagnation: the stagnation window does not survive a checkpoint, so the resumed run would diverge")
		}
	}
	if c.checkpoint != "" {
		if c.seeds > 1 {
			return errors.New("-checkpoint is single-run only: a multi-seed sweep would overwrite the same file")
		}
		if err := writableDir(filepath.Dir(c.checkpoint)); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	return nil
}

// writableDir probes the directory with a temp file: the only reliable
// writability test across permission models.
func writableDir(dir string) error {
	f, err := os.CreateTemp(dir, ".rsnharden-probe-*")
	if err != nil {
		return fmt.Errorf("directory %q is not writable: %w", dir, err)
	}
	f.Close()
	os.Remove(f.Name())
	return nil
}
