// Command rsnharden runs the full robust-RSN synthesis pipeline of the
// paper on one network: criticality analysis, multi-objective selective
// hardening, and constrained solution extraction.
//
// Usage:
//
//	rsnharden -name p22810 -generations 1000
//	rsnharden -in net.icl -generations 500 -algo nsga2 -front
//	rsnharden -in net.icl -pick damage10 -o hardened.icl
//	rsnharden -name p22810 -checkpoint run.ckpt    # SIGINT-safe, resumable
//	rsnharden -name p22810 -resume run.ckpt        # continue where it stopped
//
// Input networks carry their criticality specification in the
// instrument annotations; with -genspec the paper's randomized
// specification is generated instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"rsnrobust/internal/access"
	"rsnrobust/internal/baseline"
	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/icl"
	"rsnrobust/internal/moea"
	"rsnrobust/internal/report"
	"rsnrobust/internal/robust"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/telemetry"
)

func main() {
	var (
		in      = flag.String("in", "", "input network in ICL format")
		name    = flag.String("name", "", "Table I benchmark name instead of -in")
		gens    = flag.Int("generations", 0, "evolutionary generations (default: Table I column 6, else 500)")
		seed    = flag.Int64("seed", 42, "random seed")
		algo    = flag.String("algo", "spea2", "optimizer: spea2 or nsga2")
		genspec = flag.Bool("genspec", false, "generate the paper's randomized specification")
		front   = flag.Bool("front", false, "print the full Pareto front")
		pick    = flag.String("pick", "", "apply a constrained pick to the output: damage10 or cost10")
		out     = flag.String("o", "", "write the (optionally hardened) network to this file")
		force   = flag.Bool("critical", false, "force hardening of every critical-hitting primitive")
		greedy  = flag.Bool("greedy", false, "also report the greedy and exact baselines")
		rep     = flag.Bool("report", false, "print the robustness report of the damage<=10% solution (single- and double-fault)")
		stag    = flag.Int("stagnation", 0, "stop early after N generations without hypervolume improvement (0 = full budget)")
		workers = flag.Int("workers", 0, "objective-evaluation workers (0 = GOMAXPROCS, 1 = serial); results are identical at any count")
		islands = flag.Int("islands", 0, "island-model sub-populations with ring migration (0/1 = single population); results depend only on seed and island count")
		seeds   = flag.Int("seeds", 1, "run this many consecutive seeds (seed .. seed+N-1) and report per-seed plus aggregate results")
		jobs    = flag.Int("jobs", 0, "concurrent synthesis jobs in multi-seed mode (0 = GOMAXPROCS, 1 = serial); results are identical at any count")
		scope   = flag.String("universe", "all", "fault universe: all or control")
		objs    = flag.String("objectives", "", "comma-separated objectives to optimize (registered: damage, cost, test_time, yield_loss; empty = damage,cost)")
		telOut  = flag.String("telemetry", "", "write telemetry events (JSONL) to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file")
		prog    = flag.Bool("progress", false, "print a live per-generation summary line and a telemetry summary to stderr")
		ckpt    = flag.String("checkpoint", "", "write periodic checkpoints (and the final state on SIGINT) to this file")
		ckptN   = flag.Int("checkpoint-every", 10, "generations between periodic checkpoints (with -checkpoint)")
		resume  = flag.String("resume", "", "resume from a checkpoint file written by -checkpoint")
		ddl     = flag.Duration("deadline", 0, "run deadline; in multi-seed mode the per-job deadline (0 = none)")
		logLvl  = flag.String("log", "", "emit structured JSONL diagnostics to stderr at this level (debug, info, warn, error; empty disables)")
	)
	flag.Parse()

	// Structured diagnostics are strictly additive: they go to stderr
	// only, so stdout stays byte-identical with and without -log.
	logger := telemetry.DiscardLogger()
	if *logLvl != "" {
		logger = telemetry.NewLogger(os.Stderr, telemetry.ParseLogLevel(*logLvl), "json")
	}

	if err := validateFlags(runConfig{
		seeds: *seeds, jobs: *jobs, workers: *workers, stagnation: *stag,
		checkpoint: *ckpt, checkpointEvery: *ckptN, resume: *resume, deadline: *ddl,
	}); err != nil {
		fail(err)
	}

	// First SIGINT/SIGTERM cancels the context: the optimizer drains at
	// the next generation boundary, writes a final checkpoint and returns
	// a valid partial result. A second signal falls through to the
	// default handler and kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	stopProfiles, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}

	net, entry, err := loadNetwork(*in, *name)
	if err != nil {
		fail(err)
	}
	objNames, err := core.ParseObjectives(*objs)
	if err != nil {
		fail(err)
	}
	generations := *gens
	if generations == 0 {
		generations = 500
		if entry != nil {
			generations = entry.Generations
		}
	}
	netStats := net.Stats()
	logger.Info("run start", "tool", "rsnharden", "network", net.Name,
		"segments", netStats.Segments, "muxes", netStats.Muxes,
		"algo", *algo, "seed", *seed, "seeds", *seeds, "generations", generations)

	var sp *spec.Spec
	if *genspec || *name != "" {
		sp, err = spec.Generate(net, spec.PaperGenOptions(*seed))
		if err != nil {
			fail(err)
		}
	} else {
		sp = spec.FromNetwork(net, spec.DefaultCostModel)
	}

	var tel *telemetry.Collector
	if *telOut != "" || *prog {
		tel = telemetry.New()
		if *telOut != "" {
			f, err := os.Create(*telOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			tel.SetOutput(f)
		}
		st := net.Stats()
		tel.Meta(map[string]any{
			"tool": "rsnharden", "network": net.Name,
			"segments": st.Segments, "muxes": st.Muxes,
			"algo": *algo, "seed": *seed, "generations": generations,
		})
	}

	if *seeds > 1 {
		err := runSeedSweep(ctx, sweepConfig{
			in: *in, name: *name, genspec: *genspec,
			generations: generations, seed: *seed, seeds: *seeds, jobs: *jobs,
			algo: *algo, scope: *scope, force: *force, stag: *stag, workers: *workers,
			islands: *islands, deadline: *ddl, objectives: objNames,
		}, tel, logger)
		if err != nil {
			fail(err)
		}
		if err := tel.Close(); err != nil {
			fail(err)
		}
		if *prog && tel != nil {
			fmt.Fprintln(os.Stderr)
			if err := report.WriteTelemetry(os.Stderr, tel.Snapshot()); err != nil {
				fail(err)
			}
		}
		if err := stopProfiles(); err != nil {
			fail(err)
		}
		return
	}

	if *ddl > 0 {
		var cancelDeadline context.CancelFunc
		ctx, cancelDeadline = context.WithTimeout(ctx, *ddl)
		defer cancelDeadline()
	}

	opt := core.DefaultOptions(generations, *seed)
	opt.ForceCritical = *force
	opt.Stagnation = *stag
	opt.Workers = *workers
	opt.Islands = *islands
	opt.Objectives = objNames
	opt.Telemetry = tel
	opt.Context = ctx
	opt.CheckpointPath = *ckpt
	opt.CheckpointEvery = *ckptN
	if *resume != "" {
		cp, err := moea.LoadCheckpoint(*resume)
		if err != nil {
			fail(err)
		}
		opt.Resume = cp
		logger.Info("resuming", "checkpoint", *resume, "generation", cp.Generation)
	}
	if *prog {
		opt.OnGeneration = func(gen int, front []moea.Individual) bool {
			if g, ok := tel.LastGeneration(); ok {
				fmt.Fprintf(os.Stderr, "\rgen %-6d front %-5d hv %6.2f%%  best dmg %-10.0f best cost %-8.0f evals %-9d",
					g.Gen+1, g.Front, 100*g.NormHV, g.BestDamage, g.BestCost, g.Evaluations)
			}
			return true
		}
	}
	if *scope == "control" {
		opt.Analysis.Scope = faults.ScopeControl
	}
	if *algo == "nsga2" {
		opt.Algorithm = core.AlgoNSGA2
	} else if *algo != "spea2" {
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	s, err := core.Synthesize(net, sp, opt)
	if err != nil {
		fail(err)
	}
	if *prog {
		fmt.Fprintln(os.Stderr)
	}
	logger.Info("synthesis done", "generations", s.Generations,
		"evaluations", s.Evaluations, "cache_hits", s.CacheHits,
		"front", len(s.Front), "interrupted", s.Interrupted,
		"elapsed_ms", float64(s.Elapsed)/float64(time.Millisecond), "workers", s.Workers)

	st := net.Stats()
	fmt.Printf("network        %s\n", net.Name)
	fmt.Printf("segments       %d\n", st.Segments)
	fmt.Printf("multiplexers   %d\n", st.Muxes)
	fmt.Printf("instruments    %d\n", st.Instruments)
	fmt.Printf("max cost       %d  (all primitives hardened)\n", s.MaxCost)
	fmt.Printf("max damage     %d  (nothing hardened)\n", s.MaxDamage)
	fmt.Printf("generations    %d  (%s, %d evaluations)\n", s.Generations, opt.Algorithm, s.Evaluations)
	fmt.Printf("front size     %d\n", len(s.Front))
	// Printed only for a non-default objective set, so historical
	// damage/cost runs keep byte-identical stdout.
	kObjectives := !slices.Equal(s.Objectives, core.DefaultObjectives())
	if kObjectives {
		fmt.Printf("objectives     %s\n", strings.Join(s.Objectives, ", "))
	}
	fmt.Printf("must-harden    %d primitives protect all critical instruments\n", len(s.Analysis.MustHarden()))
	if s.Interrupted {
		// Printed only on interruption, so uninterrupted and resumed runs
		// keep byte-identical stdout.
		if *ckpt != "" {
			fmt.Printf("interrupted    true  (partial result; resume with -resume %s)\n", *ckpt)
		} else {
			fmt.Println("interrupted    true  (partial result; rerun with -checkpoint to make it resumable)")
		}
	}
	// Wall clock goes to stderr: stdout stays byte-identical for the same
	// seed at every worker count.
	fmt.Fprintf(os.Stderr, "synthesis time %v (%d workers)\n", s.Elapsed.Round(1000000), s.Workers)

	if sol, ok := s.MinCostWithDamageAtMost(0.10); ok {
		fmt.Printf("min cost  | damage<=10%%:  cost %6d  damage %10d  critical covered %v\n",
			sol.Cost, sol.Damage, sol.CriticalCovered)
	} else {
		fmt.Println("min cost  | damage<=10%:  no front solution meets the constraint")
	}
	if sol, ok := s.MinDamageWithCostAtMost(0.10); ok {
		fmt.Printf("min damage|   cost<=10%%:  cost %6d  damage %10d  critical covered %v\n",
			sol.Cost, sol.Damage, sol.CriticalCovered)
	} else {
		fmt.Println("min damage|   cost<=10%:  no front solution meets the constraint")
	}

	if *greedy {
		g := baseline.GreedyFront(s.Analysis)
		fmt.Printf("greedy front   %d prefix solutions\n", len(g))
		if baseline.ExactTractable(s.Analysis, 200_000_000) {
			e := baseline.NewExact(s.Analysis)
			optDamage := e.MinDamageWithCostAtMost(s.MaxCost / 10)
			optCost, _ := e.MinCostWithDamageAtMost(s.MaxDamage / 10)
			fmt.Printf("exact optimum  cost<=10%%: damage %d;  damage<=10%%: cost %d\n", optDamage, optCost)
		}
		fmt.Printf("full TMR       overhead %d (vs. selective hardening above)\n",
			baseline.TMROverhead(s.Analysis, 1))
	}

	if *front {
		var tb *report.Table
		if kObjectives {
			// One column per named objective, in the synthesis' canonical
			// order (Values[k] is objective s.Objectives[k]).
			hdr := append(append([]string(nil), s.Objectives...), "hardened", "critical")
			tb = report.New(hdr...)
			for _, sol := range s.Front {
				cells := make([]any, 0, len(sol.Values)+2)
				for _, v := range sol.Values {
					cells = append(cells, v)
				}
				cells = append(cells, len(sol.Hardened), sol.CriticalCovered)
				tb.Add(cells...)
			}
		} else {
			tb = report.New("cost", "damage", "hardened", "critical")
			for _, sol := range s.Front {
				tb.Add(sol.Cost, sol.Damage, len(sol.Hardened), sol.CriticalCovered)
			}
		}
		fmt.Println()
		if err := tb.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}

	if *rep {
		if sol, ok := s.MinCostWithDamageAtMost(0.10); ok {
			core.Apply(net, sol)
			m := robust.FromAnalysis(s.Analysis)
			m.Publish(tel)
			fmt.Println("\nrobustness report (damage<=10% solution applied):")
			fmt.Println(m)
			mf := faults.SampleMultiFault(net, sp, opt.Analysis, 2, 500, *seed)
			fmt.Printf("double-fault Monte Carlo (%d samples): mean damage %.1f, worst %d, mean accessible %.1f%%, critical failures %d\n",
				mf.Samples, mf.MeanDamage, mf.WorstDamage, 100*mf.MeanAccessible, mf.CriticalFailures)
		} else {
			fmt.Println("\nrobustness report: no damage<=10% solution on the front")
		}
	}

	if *out != "" {
		switch *pick {
		case "damage10":
			if sol, ok := s.MinCostWithDamageAtMost(0.10); ok {
				core.Apply(net, sol)
			}
		case "cost10":
			if sol, ok := s.MinDamageWithCostAtMost(0.10); ok {
				core.Apply(net, sol)
			}
		case "":
		default:
			fail(fmt.Errorf("unknown pick %q (want damage10 or cost10)", *pick))
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := icl.Write(f, net); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if tel != nil {
		verifyCompat(net, s, tel)
		if err := tel.Close(); err != nil {
			fail(err)
		}
		if *prog {
			fmt.Fprintln(os.Stderr)
			if err := report.WriteTelemetry(os.Stderr, tel.Snapshot()); err != nil {
				fail(err)
			}
		}
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

// verifyCompatLimit bounds the network size for the pattern-compat
// simulation: the register-level simulator shifts bit by bit, so giant
// MBIST networks would dominate the run for a sanity check.
const verifyCompatLimit = 20000

// verifyCompat exercises the paper's pattern-compatibility property
// under telemetry: it records an access trace for a few instruments on
// the current network, applies the damage<=10% pick (or the first front
// solution), and replays the trace on the hardened result. The
// simulator's shift/capture/update counters and the outcome gauge land
// in the telemetry stream.
func verifyCompat(net *rsn.Network, s *core.Synthesis, tel *telemetry.Collector) {
	st := net.Stats()
	if st.Segments+st.Muxes > verifyCompatLimit {
		tel.Gauge("verify.skipped").Set(1)
		return
	}
	instr := net.Instruments()
	if len(instr) == 0 {
		tel.Gauge("verify.skipped").Set(1)
		return
	}
	span := tel.StartSpan("verify-compat")
	defer span.End()

	sim := access.New(net, access.PolicyPaper)
	sim.SetTelemetry(tel)
	k := len(instr)
	if k > 4 {
		k = 4
	}
	tr := sim.StartTrace()
	for i := 0; i < k; i++ {
		nd := net.Node(instr[i])
		if err := sim.WriteInstrument(instr[i], access.Bits(0x5A, nd.Length)); err != nil {
			tel.Gauge("verify.skipped").Set(1)
			return
		}
	}
	sim.StopTrace()

	sol, ok := s.MinCostWithDamageAtMost(0.10)
	if !ok && len(s.Front) > 0 {
		sol, ok = s.Front[len(s.Front)-1], true
	}
	if ok {
		core.Apply(net, sol)
	}
	replay := access.New(net, access.PolicyPaper)
	replay.SetTelemetry(tel)
	compatible := 0.0
	if access.Replay(replay, tr) == nil {
		compatible = 1
	}
	tel.Gauge("verify.pattern_compatible").Set(compatible)
}

// sweepConfig is the multi-seed run description: the same synthesis at
// seeds seed .. seed+N-1, scheduled across a bounded job pool.
type sweepConfig struct {
	in, name    string
	genspec     bool
	generations int
	seed        int64
	seeds       int
	jobs        int
	algo        string
	scope       string
	force       bool
	stag        int
	workers     int
	islands     int
	deadline    time.Duration
	objectives  []string
}

// seedResult is one seed's outcome in the sweep summary.
type seedResult struct {
	seed             int64
	gens, evals      int
	cacheHits        int64
	cacheMisses      int64
	frontSize        int
	costD10, dmgD10  int64
	costC10, dmgC10  int64
	elapsed, evolveT time.Duration
	interrupted      bool
}

// runSeedSweep runs the synthesis once per seed on a RunSet scheduler
// and prints a per-seed table plus aggregates. Each job loads its own
// copy of the network and specification (deterministic, so every job
// sees identical inputs) and varies only the optimizer seed — the sweep
// measures optimizer variance, not specification variance. With a
// telemetry collector, every job's pipeline spans hang off that job's
// "job:seed-N" span via Options.ParentSpan, so the trace stays a tree
// under concurrency. Results and output are identical at any job count.
func runSeedSweep(ctx context.Context, cfg sweepConfig, tel *telemetry.Collector, logger *slog.Logger) error {
	rs := moea.NewRunSet[seedResult]()
	for i := 0; i < cfg.seeds; i++ {
		s := cfg.seed + int64(i)
		rs.Add(fmt.Sprintf("seed-%d", s), func(jctx context.Context, sp *telemetry.Span) (seedResult, error) {
			return runOneSeed(jctx, cfg, s, tel, sp)
		})
	}
	// Wall clock goes to stderr, like the single-seed path: stdout stays
	// byte-identical for the same seeds at every job count.
	tb := report.New("seed", "gens", "evals", "hits", "misses", "front",
		"cost|d10", "dmg|d10", "cost|c10", "dmg|c10")
	var (
		results     []seedResult
		sumD10      float64
		bestD10     int64 = -1
		sumC10      float64
		bestC10     int64 = -1
		sumEvolv    time.Duration
		interrupted int
		skipped     int
	)
	err := rs.Run(ctx, moea.RunOptions{Workers: cfg.jobs, Telemetry: tel, JobDeadline: cfg.deadline}, func(i int, label string, r seedResult, err error) {
		if err != nil {
			if errors.Is(err, moea.ErrInterrupted) {
				skipped++
			}
			return // reported once by Run
		}
		if r.interrupted {
			interrupted++
		}
		tb.Add(r.seed, r.gens, r.evals, r.cacheHits, r.cacheMisses, r.frontSize,
			r.costD10, r.dmgD10, r.costC10, r.dmgC10)
		results = append(results, r)
		sumEvolv += r.evolveT
		if r.costD10 >= 0 {
			sumD10 += float64(r.costD10)
			if bestD10 < 0 || r.costD10 < bestD10 {
				bestD10 = r.costD10
			}
		}
		if r.dmgC10 >= 0 {
			sumC10 += float64(r.dmgC10)
			if bestC10 < 0 || r.dmgC10 < bestC10 {
				bestC10 = r.dmgC10
			}
		}
		fmt.Fprintf(os.Stderr, "done seed %-6d in %v (evolve %v)\n",
			r.seed, r.elapsed.Round(time.Millisecond), r.evolveT.Round(time.Millisecond))
		logger.Info("seed done", "seed", r.seed, "generations", r.gens,
			"evaluations", r.evals, "front", r.frontSize, "interrupted", r.interrupted,
			"elapsed_ms", float64(r.elapsed)/float64(time.Millisecond))
	})
	if err != nil && !errors.Is(err, moea.ErrInterrupted) {
		return err
	}
	fmt.Printf("seed sweep     %d seeds (%d..%d), %s\n",
		cfg.seeds, cfg.seed, cfg.seed+int64(cfg.seeds)-1, cfg.algo)
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	if n := float64(len(results)); n > 0 {
		fmt.Printf("aggregate      cost|d10 mean %.1f best %d;  dmg|c10 mean %.1f best %d\n",
			sumD10/n, bestD10, sumC10/n, bestC10)
		fmt.Fprintf(os.Stderr, "mean evolve    %v over %d seeds\n",
			(sumEvolv / time.Duration(len(results))).Round(time.Millisecond), len(results))
	}
	if interrupted > 0 || skipped > 0 {
		fmt.Printf("interrupted    true  (%d partial seeds, %d never started)\n", interrupted, skipped)
	}
	return nil
}

// runOneSeed is one job of the sweep: a full, self-contained synthesis.
func runOneSeed(ctx context.Context, cfg sweepConfig, seed int64, tel *telemetry.Collector, span *telemetry.Span) (seedResult, error) {
	res := seedResult{seed: seed, costD10: -1, dmgD10: -1, costC10: -1, dmgC10: -1}
	net, _, err := loadNetwork(cfg.in, cfg.name)
	if err != nil {
		return res, err
	}
	var sp *spec.Spec
	if cfg.genspec || cfg.name != "" {
		// Base seed on purpose: the specification is part of the problem
		// and stays fixed across the sweep.
		if sp, err = spec.Generate(net, spec.PaperGenOptions(cfg.seed)); err != nil {
			return res, err
		}
	} else {
		sp = spec.FromNetwork(net, spec.DefaultCostModel)
	}
	opt := core.DefaultOptions(cfg.generations, seed)
	opt.ForceCritical = cfg.force
	opt.Stagnation = cfg.stag
	opt.Workers = cfg.workers
	opt.Islands = cfg.islands
	opt.Objectives = cfg.objectives
	opt.Telemetry = tel
	opt.ParentSpan = span
	opt.Context = ctx
	if cfg.scope == "control" {
		opt.Analysis.Scope = faults.ScopeControl
	}
	if cfg.algo == "nsga2" {
		opt.Algorithm = core.AlgoNSGA2
	} else if cfg.algo != "spea2" {
		return res, fmt.Errorf("unknown algorithm %q", cfg.algo)
	}
	s, err := core.Synthesize(net, sp, opt)
	if err != nil {
		return res, err
	}
	res.gens = s.Generations
	res.evals = s.Evaluations
	res.cacheHits = s.CacheHits
	res.cacheMisses = s.CacheMisses
	res.frontSize = len(s.Front)
	res.interrupted = s.Interrupted
	res.elapsed = s.Elapsed
	res.evolveT = s.EvolveTime
	if sol, ok := s.MinCostWithDamageAtMost(0.10); ok {
		res.costD10, res.dmgD10 = sol.Cost, sol.Damage
	}
	if sol, ok := s.MinDamageWithCostAtMost(0.10); ok {
		res.costC10, res.dmgC10 = sol.Cost, sol.Damage
	}
	return res, nil
}

func loadNetwork(in, name string) (*rsn.Network, *benchnets.Entry, error) {
	switch {
	case in != "" && name != "":
		return nil, nil, fmt.Errorf("use either -in or -name, not both")
	case name != "":
		e, ok := benchnets.Lookup(name)
		if !ok {
			return nil, nil, fmt.Errorf("unknown benchmark %q", name)
		}
		net, err := benchnets.GenerateEntry(e)
		return net, &e, err
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		net, err := icl.Parse(f)
		return net, nil, err
	default:
		return nil, nil, fmt.Errorf("need -in or -name (see -h)")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rsnharden:", err)
	os.Exit(1)
}
