// Command rsngen generates RSN benchmark networks in the textual ICL
// format of this repository.
//
// Usage:
//
//	rsngen -list
//	rsngen -name p22810 [-o out.icl] [-spec -seed 42]
//	rsngen -random -seed 7 -prims 80 [-ctrl]
//	rsngen -mbist 5,20,20
//
// With -spec, the paper's randomized criticality specification
// (Section VI: 70 % / 70 % non-zero weights, 10 % / 10 % critical) is
// generated and embedded into the instrument annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/icl"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/sptree"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list all Table I benchmark names")
		name    = flag.String("name", "", "generate the named Table I benchmark")
		random  = flag.Bool("random", false, "generate a random series-parallel RSN")
		mbist   = flag.String("mbist", "", "generate an MBIST family member from 'a,b,c' levels")
		seed    = flag.Int64("seed", 1, "random seed")
		prims   = flag.Int("prims", 50, "approximate primitive count for -random")
		ctrl    = flag.Bool("ctrl", false, "give some multiplexers in-network control segments (-random)")
		genSpec = flag.Bool("spec", false, "embed the paper's randomized criticality specification")
		dot     = flag.Bool("dot", false, "emit Graphviz dot instead of ICL")
		tree    = flag.Bool("tree", false, "print the binary decomposition tree (paper Fig. 3 view) to stderr")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if *list {
		for _, n := range benchnets.Names() {
			e, _ := benchnets.Lookup(n)
			fmt.Printf("%-18s %8d segments %6d muxes  (%s)\n", n, e.Segments, e.Muxes, e.Shape)
		}
		return
	}

	var net *rsn.Network
	var err error
	switch {
	case *name != "":
		net, err = benchnets.Generate(*name)
	case *mbist != "":
		net, err = genMBIST(*mbist, *seed)
	case *random:
		net = benchnets.Random(benchnets.RandomOptions{Seed: *seed, TargetPrims: *prims, SegmentControls: *ctrl})
	default:
		fmt.Fprintln(os.Stderr, "rsngen: need one of -list, -name, -random or -mbist (see -h)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", err)
		os.Exit(1)
	}

	if *genSpec {
		if _, err := spec.Generate(net, spec.PaperGenOptions(*seed)); err != nil {
			fmt.Fprintln(os.Stderr, "rsngen:", err)
			os.Exit(1)
		}
	}

	if *tree {
		tr, err := sptree.Build(net)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsngen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "decomposition tree (%d nodes, depth %d):\n%s\n", tr.Size(), tr.Depth(), tr)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsngen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var writeErr error
	if *dot {
		writeErr = rsn.WriteDot(w, net)
	} else {
		writeErr = icl.Write(w, net)
	}
	if writeErr != nil {
		fmt.Fprintln(os.Stderr, "rsngen:", writeErr)
		os.Exit(1)
	}
}

func genMBIST(levels string, seed int64) (*rsn.Network, error) {
	name := "MBIST_" + strings.ReplaceAll(levels, ",", "_")
	a, b, c, err := benchnets.ParseMBISTName(name)
	if err != nil {
		return nil, err
	}
	segs, muxes := benchnets.MBISTFamily(a, b, c)
	return benchnets.Sized(benchnets.SizedOptions{
		Name: name, Segments: segs, Muxes: muxes,
		Shape: benchnets.ShapeMBIST, Controllers: a, Groups: b, Seed: seed,
	})
}
