package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestValidateFlags pins the up-front flag checks: pool sizes,
// checkpoint-directory writability and resume-directory existence.
func TestValidateFlags(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		cfg     runConfig
		wantErr bool
	}{
		{"defaults", runConfig{checkpointEvery: 10}, false},
		{"checkpoint-writable", runConfig{checkpointEvery: 10, checkpoint: dir}, false},
		{"resume-existing-dir", runConfig{checkpointEvery: 10, resume: dir}, false},
		{"deadline", runConfig{checkpointEvery: 10, deadline: time.Minute}, false},
		{"negative-jobs", runConfig{checkpointEvery: 10, jobs: -2}, true},
		{"negative-workers", runConfig{checkpointEvery: 10, workers: -1}, true},
		{"zero-checkpoint-every", runConfig{checkpointEvery: 0}, true},
		{"negative-deadline", runConfig{checkpointEvery: 10, deadline: -time.Second}, true},
		{"checkpoint-missing-dir", runConfig{checkpointEvery: 10, checkpoint: filepath.Join(dir, "absent")}, true},
		{"resume-missing-dir", runConfig{checkpointEvery: 10, resume: filepath.Join(dir, "absent")}, true},
		{"resume-not-a-dir", runConfig{checkpointEvery: 10, resume: file}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Errorf("validateFlags(%+v): err = %v, wantErr %v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}
