package main

import (
	"fmt"
	"os"
	"time"
)

// runConfig collects the flag values whose combinations are validated
// up front, before hours of benchmark synthesis start.
type runConfig struct {
	jobs            int
	workers         int
	checkpoint      string
	checkpointEvery int
	resume          string
	deadline        time.Duration
}

// validateFlags rejects configurations that would fail mid-table:
// negative pool sizes, a checkpoint directory we cannot write into, a
// resume directory that does not exist.
func validateFlags(c runConfig) error {
	if c.jobs < 0 {
		return fmt.Errorf("-jobs must be >= 0, got %d", c.jobs)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	}
	if c.checkpointEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", c.checkpointEvery)
	}
	if c.deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0, got %v", c.deadline)
	}
	if c.checkpoint != "" {
		if err := writableDir(c.checkpoint); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	if c.resume != "" {
		fi, err := os.Stat(c.resume)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		if !fi.IsDir() {
			return fmt.Errorf("-resume: %s is not a directory (table1 keeps one checkpoint per row)", c.resume)
		}
	}
	return nil
}

// writableDir probes the directory with a temp file: the only reliable
// writability test across permission models.
func writableDir(dir string) error {
	f, err := os.CreateTemp(dir, ".table1-probe-*")
	if err != nil {
		return fmt.Errorf("directory %q is not writable: %w", dir, err)
	}
	f.Close()
	os.Remove(f.Name())
	return nil
}
