// Command table1 regenerates Table I of the paper: for every benchmark
// network it reports the size (columns 1-2), the initial assessment
// (max cost, max damage; columns 4-5), the evolutionary budget (column
// 6), the two constrained picks from the SPEA-2 front (columns 7-10)
// and the synthesis wall time (column 11).
//
// Usage:
//
//	table1                       # all 23 rows, full budgets
//	table1 -quick                # scaled-down budgets for a fast pass
//	table1 -run 'Tree|q12710'    # row filter
//	table1 -paper                # include the paper's published values
//	table1 -format markdown      # text (default), markdown or csv
//	table1 -ablate               # optimizer ablation instead of Table I
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"slices"
	"strings"
	"syscall"
	"time"

	"rsnrobust/internal/baseline"
	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/moea"
	"rsnrobust/internal/report"
	"rsnrobust/internal/spec"
	"rsnrobust/internal/telemetry"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "scale down generation budgets for a fast pass")
		run     = flag.String("run", "", "regexp filter on benchmark names")
		paper   = flag.Bool("paper", false, "append the paper's published values to every row")
		format  = flag.String("format", "text", "output format: text, markdown or csv")
		seed    = flag.Int64("seed", 42, "random seed for specification and optimizer")
		algo    = flag.String("algo", "spea2", "optimizer: spea2 or nsga2")
		scope   = flag.String("universe", "control", "fault universe: control (paper harness) or all")
		objs    = flag.String("objectives", "", "comma-separated objectives to optimize (registered: damage, cost, test_time, yield_loss; empty = damage,cost)")
		ablate  = flag.Bool("ablate", false, "run the optimizer ablation instead of Table I")
		maxP    = flag.Int("maxprims", 0, "skip benchmarks with more primitives (0 = no limit)")
		refine  = flag.Bool("refine", false, "apply greedy 1-opt refinement to the constrained picks")
		telOut  = flag.String("telemetry", "", "write telemetry events (JSONL, one meta record per row) to this file")
		cpu     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mem     = flag.String("memprofile", "", "write a heap profile to this file")
		bench   = flag.String("benchjson", "", "write machine-readable per-row results (BENCH_*.json schema) to this file")
		workers = flag.Int("workers", 0, "objective-evaluation workers (0 = GOMAXPROCS, 1 = serial); results are identical at any count")
		islands = flag.Int("islands", 0, "island-model sub-populations with ring migration (0/1 = single population); results depend only on seed and island count")
		jobs    = flag.Int("jobs", 0, "concurrent synthesis jobs (0 = GOMAXPROCS, 1 = serial); rows and output order are identical at any count")
		ckpt    = flag.String("checkpoint", "", "write one checkpoint per row (<dir>/<name>.ckpt) into this directory")
		ckptN   = flag.Int("checkpoint-every", 10, "generations between periodic checkpoints (with -checkpoint)")
		resume  = flag.String("resume", "", "resume rows from checkpoints in this directory; rows without a checkpoint start fresh")
		ddl     = flag.Duration("deadline", 0, "per-row synthesis deadline (0 = none)")
		logLvl  = flag.String("log", "", "emit structured JSONL diagnostics to stderr at this level (debug, info, warn, error; empty disables)")
	)
	flag.Parse()

	// Structured diagnostics are strictly additive: they go to stderr
	// only, so stdout stays byte-identical with and without -log.
	logger := telemetry.DiscardLogger()
	if *logLvl != "" {
		logger = telemetry.NewLogger(os.Stderr, telemetry.ParseLogLevel(*logLvl), "json")
	}

	if err := validateFlags(runConfig{
		jobs: *jobs, workers: *workers,
		checkpoint: *ckpt, checkpointEvery: *ckptN, resume: *resume, deadline: *ddl,
	}); err != nil {
		fail(err)
	}

	// First SIGINT/SIGTERM drains the table gracefully: running rows
	// checkpoint and return partial results, queued rows are skipped. A
	// second signal kills the process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	stopProfiles, err := telemetry.StartProfiles(*cpu, *mem)
	if err != nil {
		fail(err)
	}

	var telWriter io.Writer
	if *telOut != "" {
		f, err := os.Create(*telOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		telWriter = f
	}

	var filter *regexp.Regexp
	if *run != "" {
		var err error
		filter, err = regexp.Compile(*run)
		if err != nil {
			fail(err)
		}
	}

	objNames, err := core.ParseObjectives(*objs)
	if err != nil {
		fail(err)
	}
	// The bench rows record a non-default objective set so benchdiff can
	// exclude them from the 2-objective perf gate.
	objTag := ""
	if !slices.Equal(objNames, core.DefaultObjectives()) {
		objTag = strings.Join(objNames, ",")
	}

	if *ablate {
		runAblation(filter, *seed, *quick)
		return
	}

	header := []string{"design", "segs", "muxes", "maxcost", "maxdamage", "gens",
		"cost|d10", "dmg|d10", "cost|c10", "dmg|c10", "time"}
	if *paper {
		header = append(header, "p.maxcost", "p.maxdmg", "p.cost|d10", "p.dmg|d10", "p.cost|c10", "p.dmg|c10", "p.time")
	}
	tb := report.New(header...)

	// Collect the selected rows, then hand them to the run-level
	// scheduler: each row is one independent synthesis job, executed on
	// up to -jobs workers. Results stream back in canonical (submission)
	// order as soon as each row and all rows before it have finished, so
	// the table, the bench rows and the telemetry file are byte-identical
	// at any -jobs value; -jobs 1 degrades to the old sequential loop.
	var entries []benchnets.Entry
	for _, nm := range benchnets.Names() {
		e, _ := benchnets.Lookup(nm)
		if filter != nil && !filter.MatchString(e.Name) {
			continue
		}
		if *maxP > 0 && e.Segments+e.Muxes > *maxP {
			continue
		}
		entries = append(entries, e)
	}

	var benchRows []benchRow
	grand := time.Now()
	logger.Info("run start", "tool", "table1", "rows", len(entries),
		"algo", *algo, "seed", *seed, "quick", *quick, "jobs", *jobs, "workers", *workers)
	rs := moea.NewRunSet[rowResult]()
	telBufs := make([]*bytes.Buffer, len(entries))
	for i := range entries {
		i, e := i, entries[i]
		// Per-row telemetry buffers keep the shared JSONL file
		// row-atomic and canonically ordered under concurrency; the
		// emit callback below flushes them in submission order.
		if telWriter != nil {
			telBufs[i] = &bytes.Buffer{}
		}
		rs.Add(e.Name, func(jctx context.Context, _ *telemetry.Span) (rowResult, error) {
			var w io.Writer
			if telBufs[i] != nil {
				w = telBufs[i]
			}
			row, err := runRow(jctx, e, rowOpts{
				seed: *seed, quick: *quick, algo: *algo, scope: *scope,
				refine: *refine, workers: *workers, islands: *islands,
				ckptDir: *ckpt, resumeDir: *resume, ckptEvery: *ckptN,
				objectives: objNames,
			}, w)
			if err != nil {
				return row, fmt.Errorf("%s: %w", e.Name, err)
			}
			return row, nil
		})
	}
	interrupted := 0
	runErr := rs.Run(ctx, moea.RunOptions{Workers: *jobs, JobDeadline: *ddl}, func(i int, label string, row rowResult, err error) {
		if err != nil {
			return // reported once by Run
		}
		if row.interrupted {
			interrupted++
		}
		e := entries[i]
		if telBufs[i] != nil {
			if _, werr := telWriter.Write(telBufs[i].Bytes()); werr != nil {
				fail(werr)
			}
			telBufs[i] = nil
		}
		cells := []any{e.Name, e.Segments, e.Muxes, row.maxCost, row.maxDamage, row.gens,
			row.costD10, row.dmgD10, row.costC10, row.dmgC10, row.elapsed.Round(time.Second / 10)}
		if *paper {
			cells = append(cells, e.PaperMaxCost, e.PaperMaxDamage,
				e.PaperCostAt10Dmg, e.PaperDamageAt10Dmg, e.PaperCostAt10Cost, e.PaperDmgAt10Cost, e.PaperTime)
		}
		tb.Add(cells...)
		benchRows = append(benchRows, benchRow{
			Network:     e.Name,
			Objectives:  objTag,
			Segments:    e.Segments,
			Muxes:       e.Muxes,
			Primitives:  e.Segments + e.Muxes,
			Generations: row.gens,
			Evaluations: row.evaluations,
			DeltaEvals:  row.deltaEvals,
			FullEvals:   row.fullEvals,
			CacheHits:   row.cacheHits,
			CacheMisses: row.cacheMisses,
			AnalysisMS:  durMS(row.analysisTime),
			SPEA2MS:     durMS(row.evolveTime),
			TotalMS:     durMS(row.elapsed),
			Stages: stageMS{
				SPTreeMS:      durMS(row.treeTime),
				CriticalityMS: durMS(row.critTime),
				EvolveMS:      durMS(row.evolveTime),
				ExtractMS:     durMS(row.extractTime),
			},
			AllocsPerGen: row.allocsPerGen,
			FrontSize:    row.frontSize,
			CostD10:      row.costD10,
			DmgD10:       row.dmgD10,
			CostC10:      row.costC10,
			DmgC10:       row.dmgC10,
		})
		fmt.Fprintf(os.Stderr, "done %-18s in %v\n", e.Name, row.elapsed.Round(time.Second/10))
		logger.Info("row done", "network", e.Name, "generations", row.gens,
			"evaluations", row.evaluations, "front", row.frontSize,
			"interrupted", row.interrupted, "elapsed_ms", durMS(row.elapsed))
	})
	if runErr != nil && !errors.Is(runErr, moea.ErrInterrupted) {
		fail(runErr)
	}
	if err := tb.Write(os.Stdout, *format); err != nil {
		fail(err)
	}
	if runErr != nil || interrupted > 0 {
		note := "interrupted: the table above is partial"
		if *ckpt != "" {
			note += "; rerun with -resume " + *ckpt + " to continue"
		}
		fmt.Fprintln(os.Stderr, note)
	}
	if *bench != "" {
		if err := writeBenchJSON(*bench, *seed, *quick, *algo, *workers, *jobs, *islands, benchRows); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *bench)
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(grand).Round(time.Second))
	logger.Info("run done", "rows", len(benchRows), "interrupted_rows", interrupted,
		"elapsed_ms", durMS(time.Since(grand)))
}

// benchRow is one row of the machine-readable BENCH_*.json perf
// trajectory: where the time went (exact analysis vs. SPEA-2) and how
// much evolutionary effort was spent. Since rsnrobust-bench/v2 every
// row also carries the per-stage wall clock split; v3 adds the
// evaluation-cache counters (evaluations counts only true, non-cached
// evaluations) and the allocation rate of the generation loop; v4 adds
// the canonical objective list of non-default K-objective runs (empty
// = the default damage/cost pair) so perf gates can compare
// like-for-like rows.
type benchRow struct {
	Network     string `json:"network"`
	Objectives  string `json:"objectives,omitempty"`
	Segments    int    `json:"segments"`
	Muxes       int    `json:"muxes"`
	Primitives  int    `json:"primitives"`
	Generations int    `json:"generations"`
	Evaluations int    `json:"evaluations"`
	// DeltaEvals and FullEvals split Evaluations by path: children
	// scored incrementally from their parent versus full evaluations.
	// Their sum equals Evaluations; both are worker-invariant.
	DeltaEvals  int     `json:"delta_evals"`
	FullEvals   int     `json:"full_evals"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	AnalysisMS  float64 `json:"analysis_ms"`
	SPEA2MS     float64 `json:"spea2_ms"`
	TotalMS     float64 `json:"total_ms"`
	Stages      stageMS `json:"stages"`
	// AllocsPerGen is the heap-allocation count of the whole synthesis
	// divided by its generations, from runtime.MemStats deltas. Only
	// meaningful at -jobs 1 (concurrent rows share the allocator).
	AllocsPerGen float64 `json:"allocs_per_gen"`
	FrontSize    int     `json:"front_size"`
	CostD10      int64   `json:"cost_d10"`
	DmgD10       int64   `json:"dmg_d10"`
	CostC10      int64   `json:"cost_c10"`
	DmgC10       int64   `json:"dmg_c10"`
}

// stageMS is the per-stage wall clock of one synthesis run: the two
// halves of the exact analysis, the evolutionary loop and the front
// materialization.
type stageMS struct {
	SPTreeMS      float64 `json:"sptree_ms"`
	CriticalityMS float64 `json:"criticality_ms"`
	EvolveMS      float64 `json:"evolve_ms"`
	ExtractMS     float64 `json:"extract_ms"`
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func writeBenchJSON(path string, seed int64, quick bool, algo string, workers, jobs, islands int, rows []benchRow) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	doc := struct {
		Schema     string     `json:"schema"`
		Seed       int64      `json:"seed"`
		Quick      bool       `json:"quick"`
		Algo       string     `json:"algo"`
		GOMAXPROCS int        `json:"gomaxprocs"`
		Workers    int        `json:"workers"`
		Jobs       int        `json:"jobs"`
		Islands    int        `json:"islands"`
		Rows       []benchRow `json:"rows"`
	}{Schema: "rsnrobust-bench/v5", Seed: seed, Quick: quick, Algo: algo,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers, Jobs: jobs,
		Islands: max(islands, 1), Rows: rows}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// rowOpts is the per-row synthesis configuration shared by every row
// of the table: the optimizer knobs plus the checkpoint/resume
// directories (one <name>.ckpt file per row).
type rowOpts struct {
	seed               int64
	quick              bool
	algo, scope        string
	refine             bool
	workers            int
	islands            int
	ckptDir, resumeDir string
	ckptEvery          int
	objectives         []string
}

type rowResult struct {
	maxCost, maxDamage int64
	gens               int
	evaluations        int
	deltaEvals         int
	fullEvals          int
	cacheHits          int64
	cacheMisses        int64
	allocsPerGen       float64
	frontSize          int
	costD10, dmgD10    int64
	costC10, dmgC10    int64
	critD10, critC10   bool
	interrupted        bool
	elapsed            time.Duration
	analysisTime       time.Duration
	evolveTime         time.Duration
	treeTime           time.Duration
	critTime           time.Duration
	extractTime        time.Duration
}

// budget scales the paper's generation budget in quick mode: large
// networks get at most 60 generations, small ones at most 150. Even in
// full mode the two giant rows (above 400k primitives) run at a tenth
// of the published budget — objective evaluations on million-bit
// genomes cost proportionally more on this single-core harness than on
// the authors' testbed; EXPERIMENTS.md discusses the scaling.
func budget(e benchnets.Entry, quick bool) int {
	prims := e.Segments + e.Muxes
	if !quick {
		if prims > 400000 {
			g := e.Generations / 10
			if g < 60 {
				g = 60
			}
			return g
		}
		return e.Generations
	}
	cap := 150
	if prims > 10000 {
		cap = 60
	}
	if e.Generations < cap {
		return e.Generations
	}
	return cap
}

func runRow(ctx context.Context, e benchnets.Entry, ro rowOpts, telWriter io.Writer) (rowResult, error) {
	var res rowResult
	seed, quick, algo := ro.seed, ro.quick, ro.algo
	net, err := benchnets.GenerateEntry(e)
	if err != nil {
		return res, err
	}
	sp, err := spec.Generate(net, spec.PaperGenOptions(seed))
	if err != nil {
		return res, err
	}
	opt := core.DefaultOptions(budget(e, quick), seed)
	opt.Workers = ro.workers
	opt.Islands = ro.islands
	opt.Objectives = ro.objectives
	opt.Context = ctx
	if ro.ckptDir != "" {
		opt.CheckpointPath = filepath.Join(ro.ckptDir, e.Name+".ckpt")
		opt.CheckpointEvery = ro.ckptEvery
	}
	if ro.resumeDir != "" {
		// A missing per-row checkpoint just means the row never started
		// (or the directory is from a different filter): run it fresh.
		cp, err := moea.LoadCheckpoint(filepath.Join(ro.resumeDir, e.Name+".ckpt"))
		switch {
		case err == nil:
			opt.Resume = cp
		case !errors.Is(err, os.ErrNotExist):
			return res, err
		}
	}
	if algo == "nsga2" {
		opt.Algorithm = core.AlgoNSGA2
	}
	if ro.scope != "all" {
		opt.Analysis.Scope = faults.ScopeControl
	}
	// One collector per row, all streaming into the shared JSONL file;
	// the leading meta record delimits the rows.
	var tel *telemetry.Collector
	if telWriter != nil {
		tel = telemetry.New()
		tel.SetOutput(telWriter)
		tel.Meta(map[string]any{
			"tool": "table1", "network": e.Name,
			"segments": e.Segments, "muxes": e.Muxes,
			"algo": algo, "seed": seed, "generations": budget(e, quick),
		})
		opt.Telemetry = tel
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	s, err := core.Synthesize(net, sp, opt)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return res, err
	}
	if err := tel.Close(); err != nil {
		return res, err
	}
	res.interrupted = s.Interrupted
	res.maxCost = s.MaxCost
	res.maxDamage = s.MaxDamage
	res.gens = s.Generations
	res.evaluations = s.Evaluations
	res.deltaEvals = s.DeltaEvals
	res.fullEvals = s.FullEvals
	res.cacheHits = s.CacheHits
	res.cacheMisses = s.CacheMisses
	if s.Generations > 0 {
		res.allocsPerGen = float64(ms1.Mallocs-ms0.Mallocs) / float64(s.Generations)
	}
	res.frontSize = len(s.Front)
	res.elapsed = s.Elapsed
	res.analysisTime = s.AnalysisTime
	res.evolveTime = s.EvolveTime
	res.treeTime = s.TreeTime
	res.critTime = s.CritTime
	res.extractTime = s.ExtractTime
	pickCost := s.MinCostWithDamageAtMost
	pickDamage := s.MinDamageWithCostAtMost
	if ro.refine {
		pickCost = s.RefinedMinCostWithDamageAtMost
		pickDamage = s.RefinedMinDamageWithCostAtMost
	}
	if sol, ok := pickCost(0.10); ok {
		res.costD10, res.dmgD10, res.critD10 = sol.Cost, sol.Damage, sol.CriticalCovered
	} else {
		res.costD10, res.dmgD10 = -1, -1
	}
	if sol, ok := pickDamage(0.10); ok {
		res.costC10, res.dmgC10, res.critC10 = sol.Cost, sol.Damage, sol.CriticalCovered
	} else {
		res.costC10, res.dmgC10 = -1, -1
	}
	return res, nil
}

// runAblation compares SPEA-2 against NSGA-II, the greedy ratio
// heuristic, uniform random sampling and (where tractable) the exact
// knapsack optimum, on the small and medium Table I networks.
func runAblation(filter *regexp.Regexp, seed int64, quick bool) {
	names := []string{"TreeFlat", "TreeUnbalanced", "TreeBalanced", "TreeFlat_Ex", "q12710", "a586710", "p34392", "t512505", "p22810"}
	tb := report.New("design", "method", "hypervol%", "cost|d10", "dmg|c10", "time")
	for _, nm := range names {
		e, ok := benchnets.Lookup(nm)
		if !ok || (filter != nil && !filter.MatchString(nm)) {
			continue
		}
		net, err := benchnets.GenerateEntry(e)
		if err != nil {
			fail(err)
		}
		sp, err := spec.Generate(net, spec.PaperGenOptions(seed))
		if err != nil {
			fail(err)
		}
		gens := budget(e, quick)

		type method struct {
			name string
			run  func() ([]core.Solution, *core.Synthesis, error)
		}
		var analysisRef *core.Synthesis
		methods := []method{
			{"spea2", func() ([]core.Solution, *core.Synthesis, error) {
				s, err := core.Synthesize(net, sp, core.DefaultOptions(gens, seed))
				if s != nil {
					analysisRef = s
				}
				return frontOf(s), s, err
			}},
			{"nsga2", func() ([]core.Solution, *core.Synthesis, error) {
				opt := core.DefaultOptions(gens, seed)
				opt.Algorithm = core.AlgoNSGA2
				s, err := core.Synthesize(net, sp, opt)
				return frontOf(s), s, err
			}},
		}
		methods = append(methods, method{"spea2-uniform", func() ([]core.Solution, *core.Synthesis, error) {
			opt := core.DefaultOptions(gens, seed)
			p := moea.Defaults(net.Stats().Muxes, gens, seed)
			p.Crossover = moea.Uniform
			opt.Params = &p
			s, err := core.Synthesize(net, sp, opt)
			return frontOf(s), s, err
		}})
		for _, m := range methods {
			start := time.Now()
			front, s, err := m.run()
			if err != nil {
				fail(err)
			}
			addAblationRow(tb, e.Name, m.name, front, s, time.Since(start))
		}
		// Greedy, random and exact reuse the SPEA-2 run's analysis.
		a := analysisRef.Analysis
		start := time.Now()
		greedy := baseline.GreedyFront(a)
		addAblationRow(tb, e.Name, "greedy", greedy, analysisRef, time.Since(start))
		start = time.Now()
		rnd := baseline.RandomFront(a, seed, 2000)
		addAblationRow(tb, e.Name, "random", rnd, analysisRef, time.Since(start))
		if baseline.ExactTractable(a, 500_000_000) {
			start = time.Now()
			ex := baseline.NewExact(a)
			costD10, _ := ex.MinCostWithDamageAtMost(analysisRef.MaxDamage / 10)
			dmgC10 := ex.MinDamageWithCostAtMost(analysisRef.MaxCost / 10)
			tb.Add(e.Name, "exact", "100.0", costD10, dmgC10, time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr, "done %s\n", e.Name)
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		fail(err)
	}
}

func frontOf(s *core.Synthesis) []core.Solution {
	if s == nil {
		return nil
	}
	return s.Front
}

// addAblationRow computes the hypervolume of a solution front relative
// to the exact optimum's hypervolume (or the raw reference box if the
// exact DP is intractable) and the two constrained picks.
func addAblationRow(tb *report.Table, design, method string, front []core.Solution, s *core.Synthesis, elapsed time.Duration) {
	ref := []float64{float64(s.MaxDamage) * 1.01, float64(s.MaxCost) * 1.01}
	inds := make([]moea.Individual, len(front))
	for i, sol := range front {
		inds[i] = moea.Individual{Obj: []float64{float64(sol.Damage), float64(sol.Cost)}}
	}
	hv := moea.Hypervolume(inds, ref)

	// Normalize against the exact front's hypervolume when tractable.
	norm := ref[0] * ref[1]
	if baseline.ExactTractable(s.Analysis, 500_000_000) {
		ex := baseline.NewExact(s.Analysis)
		var exInds []moea.Individual
		for c := int64(0); c <= s.MaxCost; c++ {
			exInds = append(exInds, moea.Individual{Obj: []float64{float64(ex.MinDamageWithCostAtMost(c)), float64(c)}})
		}
		norm = moea.Hypervolume(moea.ParetoFilter(exInds), ref)
	}

	costD10, dmgC10 := int64(-1), int64(-1)
	for _, sol := range front {
		if float64(sol.Damage) <= 0.10*float64(s.MaxDamage) && (costD10 < 0 || sol.Cost < costD10) {
			costD10 = sol.Cost
		}
		if float64(sol.Cost) <= 0.10*float64(s.MaxCost) && (dmgC10 < 0 || sol.Damage < dmgC10) {
			dmgC10 = sol.Damage
		}
	}
	tb.Add(design, method, fmt.Sprintf("%.1f", 100*hv/norm), costD10, dmgC10, elapsed.Round(time.Millisecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "table1:", err)
	os.Exit(1)
}
