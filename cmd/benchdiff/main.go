// Command benchdiff compares two rsnrobust-bench JSON artifacts
// (BENCH_2.json, BENCH_3.json, ...) row by row on the evolutionary
// stage's wall clock (stages.evolve_ms) and fails when any shared row
// regresses by more than the threshold. It is the Makefile's
// `bench-compare` gate:
//
//	go run ./cmd/benchdiff -threshold 15 BENCH_4.json BENCH_5.json
//
// Rows only present in one file are reported but do not fail the gate
// (the row set legitimately changes with -quick/-maxprims). The v2
// through v5 schemas are all accepted — the compared fields are common
// to every version, so a v4 baseline diffs cleanly against a v5
// artifact (v5 adds islands and the delta/full evaluation split, which
// this gate does not read). Rows carrying a non-default objective list (v4's
// "objectives" field; absent means the default damage/cost pair) are
// excluded from the gate: a K-objective evolve loop is a different
// workload and must not mask a 2-objective fast-path regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchDoc struct {
	Schema string `json:"schema"`
	Algo   string `json:"algo"`
	Jobs   int    `json:"jobs"`
	Rows   []struct {
		Network    string `json:"network"`
		Objectives string `json:"objectives"`
		Stages     struct {
			EvolveMS float64 `json:"evolve_ms"`
		} `json:"stages"`
	} `json:"rows"`
}

func load(path string) (*benchDoc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Rows) == 0 {
		return nil, fmt.Errorf("%s: no benchmark rows", path)
	}
	return &doc, nil
}

func main() {
	threshold := flag.Float64("threshold", 15, "max allowed evolve_ms regression in percent")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldRows := map[string]float64{}
	for _, r := range oldDoc.Rows {
		if r.Objectives != "" {
			continue // K-objective row: not part of the 2-objective gate
		}
		oldRows[r.Network] = r.Stages.EvolveMS
	}

	fmt.Printf("%-22s %12s %12s %9s\n", "network", "old evolve", "new evolve", "delta")
	regressions, compared := 0, 0
	seen := map[string]bool{}
	for _, r := range newDoc.Rows {
		if r.Objectives != "" {
			fmt.Printf("%-22s %12s %9.1fms   (objectives %s, not compared)\n",
				r.Network, "-", r.Stages.EvolveMS, r.Objectives)
			continue
		}
		seen[r.Network] = true
		old, ok := oldRows[r.Network]
		if !ok {
			fmt.Printf("%-22s %12s %9.1fms   (new row, not compared)\n", r.Network, "-", r.Stages.EvolveMS)
			continue
		}
		if old <= 0 {
			fmt.Printf("%-22s %12s %9.1fms   (old evolve_ms <= 0, not compared)\n", r.Network, "-", r.Stages.EvolveMS)
			continue
		}
		compared++
		pct := 100 * (r.Stages.EvolveMS - old) / old
		mark := ""
		if pct > *threshold {
			regressions++
			mark = "   REGRESSION"
		}
		fmt.Printf("%-22s %10.1fms %10.1fms %+8.1f%%%s\n", r.Network, old, r.Stages.EvolveMS, pct, mark)
	}
	for _, r := range oldDoc.Rows {
		if r.Objectives == "" && !seen[r.Network] {
			fmt.Printf("%-22s %10.1fms %12s   (row dropped, not compared)\n", r.Network, r.Stages.EvolveMS, "-")
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no shared rows to compare")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d/%d rows regressed more than %.0f%% on evolve_ms\n",
			regressions, compared, *threshold)
		os.Exit(1)
	}
	fmt.Printf("ok: %d rows within %.0f%% on evolve_ms\n", compared, *threshold)
}
