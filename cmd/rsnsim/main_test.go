package main

import (
	"testing"

	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
)

func TestParseFault(t *testing.T) {
	net := fixture.PaperExample()

	f, err := parseFault(net, "break:i1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != faults.SegmentBreak || f.Node != net.Lookup("i1") {
		t.Errorf("parsed %+v", f)
	}

	f, err = parseFault(net, "stuck:m0:1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != faults.MuxStuck || f.Node != net.Lookup("m0") || f.Port != 1 {
		t.Errorf("parsed %+v", f)
	}

	for _, bad := range []string{
		"",
		"break:nosuch",
		"break:m0",      // not a segment
		"stuck:i1:0",    // not a mux
		"stuck:m0:7",    // port out of range
		"stuck:m0:x",    // not a number
		"explode:m0",    // unknown kind
		"stuck:m0",      // missing port
		"break:i1:oops", // extra field
	} {
		if _, err := parseFault(net, bad); err == nil {
			t.Errorf("parseFault accepted %q", bad)
		}
	}
}

func TestLoadRejectsNothing(t *testing.T) {
	if _, err := load("", ""); err == nil {
		t.Fatal("load with no source succeeded")
	}
}

func TestLoadBenchmark(t *testing.T) {
	net, err := load("", "TreeFlat")
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "TreeFlat" {
		t.Errorf("loaded %q", net.Name)
	}
}
