// Command rsnsim drives the register-level RSN access simulator:
// retargeting, fault injection and accessibility reporting.
//
// Usage:
//
//	rsnsim -in net.icl -target tempsensor             # access one instrument
//	rsnsim -in net.icl -target x -fault break:i1      # under a broken segment
//	rsnsim -name TreeFlat -fault stuck:sib3.mux:0 -summary
//	rsnsim -in hardened.icl -campaign                 # all single faults
//
// The -campaign mode injects every single fault of the fault universe
// and reports, per fault, how many instruments stay observable and
// settable — on a hardened network the faults of hardened primitives
// are avoided entirely.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rsnrobust/internal/access"
	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/icl"
	"rsnrobust/internal/report"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/telemetry"
)

func main() {
	var (
		in       = flag.String("in", "", "input network in ICL format")
		name     = flag.String("name", "", "Table I benchmark name instead of -in")
		target   = flag.String("target", "", "instrument segment to access")
		faultArg = flag.String("fault", "", "inject a fault: break:<segment> or stuck:<mux>:<port>")
		campaign = flag.Bool("campaign", false, "run a full single-fault accessibility campaign")
		summary  = flag.Bool("summary", false, "print only totals for -campaign")
		strict   = flag.Bool("strict", false, "use the strict (transitive control-coupling) policy")
		telOut   = flag.String("telemetry", "", "write telemetry events (JSONL) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopProfiles, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}

	net, err := load(*in, *name)
	if err != nil {
		fail(err)
	}

	var tel *telemetry.Collector
	if *telOut != "" {
		tel = telemetry.New()
		f, err := os.Create(*telOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tel.SetOutput(f)
		st := net.Stats()
		tel.Meta(map[string]any{
			"tool": "rsnsim", "network": net.Name,
			"segments": st.Segments, "muxes": st.Muxes,
		})
	}
	policy := access.PolicyPaper
	if *strict {
		policy = access.PolicyStrict
	}

	var flt *faults.Fault
	if *faultArg != "" {
		f, err := parseFault(net, *faultArg)
		if err != nil {
			fail(err)
		}
		flt = &f
	}

	switch {
	case *campaign:
		runCampaign(net, policy, *summary, tel)
	case *target != "":
		runAccess(net, flt, *target, policy, tel)
	default:
		fail(fmt.Errorf("need -target or -campaign (see -h)"))
	}

	if err := tel.Close(); err != nil {
		fail(err)
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
}

func runAccess(net *rsn.Network, flt *faults.Fault, target string, policy access.Policy, tel *telemetry.Collector) {
	seg := net.Lookup(target)
	if seg == rsn.None || net.Node(seg).Kind != rsn.KindSegment {
		fail(fmt.Errorf("no segment named %q", target))
	}
	span := tel.StartSpan("access")
	defer span.End()
	sim := access.New(net, policy)
	sim.SetTelemetry(tel)
	if flt != nil {
		if err := sim.InjectFault(*flt); err != nil {
			fmt.Printf("fault %s avoided: primitive is hardened\n", flt.String(net))
		} else {
			fmt.Printf("fault %s injected\n", flt.String(net))
		}
	}
	rounds, err := sim.Configure([]rsn.NodeID{seg})
	if err != nil {
		fmt.Printf("retargeting failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("retargeted to %s in %d CSU rounds, active path %d bits\n", target, rounds, sim.PathBits())

	obs, set := access.Accessible(net, flt, seg, policy)
	fmt.Printf("observable %v, settable %v\n", obs, set)
	st := sim.Stats()
	fmt.Printf("access cost: %d shift clocks, %d captures, %d updates, %d external writes\n",
		st.ShiftClocks, st.Captures, st.Updates, st.ExternalWrites)
}

func runCampaign(net *rsn.Network, policy access.Policy, summaryOnly bool, tel *telemetry.Collector) {
	span := tel.StartSpan("campaign")
	defer span.End()
	instr := net.Instruments()
	universe := faults.Universe(net)
	fmt.Printf("network %s: %d instruments, %d single faults\n", net.Name, len(instr), len(universe))

	tb := report.New("fault", "avoided", "observable", "settable")
	avoided, totalObs, totalSet := 0, 0, 0
	worstObs, worstSet := len(instr), len(instr)
	for _, f := range universe {
		if net.Node(f.Node).Hardened {
			avoided++
			totalObs += len(instr)
			totalSet += len(instr)
			if !summaryOnly {
				tb.Add(f.String(net), true, len(instr), len(instr))
			}
			continue
		}
		nObs, nSet := 0, 0
		for _, seg := range instr {
			obs, set := access.Accessible(net, &f, seg, policy)
			if obs {
				nObs++
			}
			if set {
				nSet++
			}
		}
		totalObs += nObs
		totalSet += nSet
		if nObs < worstObs {
			worstObs = nObs
		}
		if nSet < worstSet {
			worstSet = nSet
		}
		if !summaryOnly {
			tb.Add(f.String(net), false, nObs, nSet)
		}
	}
	if !summaryOnly {
		if err := tb.WriteText(os.Stdout); err != nil {
			fail(err)
		}
	}
	n := len(universe) * len(instr)
	tel.Gauge("campaign.faults").Set(float64(len(universe)))
	tel.Gauge("campaign.avoided").Set(float64(avoided))
	tel.Gauge("campaign.mean_observable").Set(float64(totalObs) / float64(n))
	tel.Gauge("campaign.mean_settable").Set(float64(totalSet) / float64(n))
	fmt.Printf("avoided faults: %d of %d\n", avoided, len(universe))
	fmt.Printf("mean observable: %.1f%%  mean settable: %.1f%%\n",
		100*float64(totalObs)/float64(n), 100*float64(totalSet)/float64(n))
	fmt.Printf("worst-case observable: %d of %d  settable: %d of %d\n",
		worstObs, len(instr), worstSet, len(instr))
}

func parseFault(net *rsn.Network, s string) (faults.Fault, error) {
	parts := strings.Split(s, ":")
	switch {
	case len(parts) == 2 && parts[0] == "break":
		id := net.Lookup(parts[1])
		if id == rsn.None || net.Node(id).Kind != rsn.KindSegment {
			return faults.Fault{}, fmt.Errorf("no segment named %q", parts[1])
		}
		return faults.Fault{Kind: faults.SegmentBreak, Node: id}, nil
	case len(parts) == 3 && parts[0] == "stuck":
		id := net.Lookup(parts[1])
		if id == rsn.None || net.Node(id).Kind != rsn.KindMux {
			return faults.Fault{}, fmt.Errorf("no mux named %q", parts[1])
		}
		port, err := strconv.Atoi(parts[2])
		if err != nil || port < 0 || port >= len(net.Pred(id)) {
			return faults.Fault{}, fmt.Errorf("bad port %q for mux %q", parts[2], parts[1])
		}
		return faults.Fault{Kind: faults.MuxStuck, Node: id, Port: port}, nil
	default:
		return faults.Fault{}, fmt.Errorf("bad fault %q (want break:<segment> or stuck:<mux>:<port>)", s)
	}
}

func load(in, name string) (*rsn.Network, error) {
	switch {
	case name != "":
		return benchnets.Generate(name)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return icl.Parse(f)
	default:
		return nil, fmt.Errorf("need -in or -name")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rsnsim:", err)
	os.Exit(1)
}
