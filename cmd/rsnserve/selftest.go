package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"rsnrobust/internal/serve"
)

// runSelftest starts the server on a loopback port and drives a small
// load-generation battery through the real HTTP stack: the analysis
// and synthesis endpoints, result caching, deadline truncation, and a
// burst of concurrent jobs. It is the smoke gate `make serve-smoke`
// runs in CI.
func runSelftest(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	steps := []struct {
		name string
		fn   func() error
	}{
		{"healthz", func() error {
			return expectStatus(http.Get(base + "/healthz"))
		}},
		{"analyze", func() error {
			body, err := postJSON(base+"/v1/analyze",
				`{"network":{"name":"TreeFlat"},"spec":{"seed":1},"top_damages":3}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"segments":     func(v any) bool { return v == float64(24) },
				"total_damage": func(v any) bool { d, ok := v.(float64); return ok && d > 0 },
			})
		}},
		{"harden", func() error {
			body, err := postJSON(base+"/v1/harden",
				`{"network":{"name":"TreeFlat"},"spec":{"seed":1},"options":{"generations":30,"seed":1}}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"front":       func(v any) bool { f, ok := v.([]any); return ok && len(f) > 1 },
				"interrupted": func(v any) bool { return v == false },
				"cached":      func(v any) bool { return v == false },
			})
		}},
		{"cache hit", func() error {
			body, err := postJSON(base+"/v1/harden",
				`{"network":{"name":"TreeFlat"},"spec":{"seed":1},"options":{"generations":30,"seed":1}}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"cached": func(v any) bool { return v == true },
			})
		}},
		{"deadline truncation", func() error {
			body, err := postJSON(base+"/v1/harden",
				`{"network":{"name":"TreeBalanced"},"spec":{"seed":2},
				  "options":{"generations":100000,"seed":2,"deadline_ms":200,"no_cache":true}}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"interrupted": func(v any) bool { return v == true },
				"front":       func(v any) bool { f, ok := v.([]any); return ok && len(f) > 0 },
			})
		}},
		{"concurrent burst", func() error {
			const n = 8
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, err := postJSON(base+"/v1/harden", fmt.Sprintf(
						`{"network":{"name":"TreeFlat"},"spec":{"seed":%d},"options":{"generations":15,"seed":%d}}`, i, i))
					if err != nil {
						errs <- fmt.Errorf("job %d: %w", i, err)
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				return err
			}
			return nil
		}},
		{"metrics", func() error {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			for _, want := range []string{"rsn_serve_http_requests", "rsn_serve_cache_hits", "rsn_serve_job_ms_count"} {
				if !strings.Contains(string(b), want) {
					return fmt.Errorf("exposition lacks %s:\n%s", want, b)
				}
			}
			return nil
		}},
	}
	for _, st := range steps {
		t0 := time.Now()
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		fmt.Printf("rsnserve: selftest %-20s ok (%v)\n", st.name, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// postJSON posts body and returns the decoded 200 response.
func postJSON(url, body string) (map[string]any, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("bad JSON: %w (%s)", err, b)
	}
	return m, nil
}

func expectStatus(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func expectFields(m map[string]any, checks map[string]func(any) bool) error {
	for field, ok := range checks {
		if !ok(m[field]) {
			return fmt.Errorf("field %q has unexpected value %v", field, m[field])
		}
	}
	return nil
}
