package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"rsnrobust/internal/serve"
)

// runSelftest starts the server on a loopback port and drives a small
// load-generation battery through the real HTTP stack: the analysis
// and synthesis endpoints, result caching, deadline truncation, and a
// burst of concurrent jobs. It is the smoke gate `make serve-smoke`
// runs in CI.
func runSelftest(srv *serve.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// lastTrace carries the streamed harden's trace ID forward to the
	// flight-recorder step, which looks the job up by it.
	var lastTrace string

	steps := []struct {
		name string
		fn   func() error
	}{
		{"healthz", func() error {
			return expectStatus(http.Get(base + "/healthz"))
		}},
		{"analyze", func() error {
			body, err := postJSON(base+"/v1/analyze",
				`{"network":{"name":"TreeFlat"},"spec":{"seed":1},"top_damages":3}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"segments":     func(v any) bool { return v == float64(24) },
				"total_damage": func(v any) bool { d, ok := v.(float64); return ok && d > 0 },
			})
		}},
		{"harden", func() error {
			body, err := postJSON(base+"/v1/harden",
				`{"network":{"name":"TreeFlat"},"spec":{"seed":1},"options":{"generations":30,"seed":1}}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"front":       func(v any) bool { f, ok := v.([]any); return ok && len(f) > 1 },
				"interrupted": func(v any) bool { return v == false },
				"cached":      func(v any) bool { return v == false },
			})
		}},
		{"cache hit", func() error {
			body, err := postJSON(base+"/v1/harden",
				`{"network":{"name":"TreeFlat"},"spec":{"seed":1},"options":{"generations":30,"seed":1}}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"cached": func(v any) bool { return v == true },
			})
		}},
		{"deadline truncation", func() error {
			body, err := postJSON(base+"/v1/harden",
				`{"network":{"name":"TreeBalanced"},"spec":{"seed":2},
				  "options":{"generations":100000,"seed":2,"deadline_ms":200,"no_cache":true}}`)
			if err != nil {
				return err
			}
			return expectFields(body, map[string]func(any) bool{
				"interrupted": func(v any) bool { return v == true },
				"front":       func(v any) bool { f, ok := v.([]any); return ok && len(f) > 0 },
			})
		}},
		{"concurrent burst", func() error {
			const n = 8
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, err := postJSON(base+"/v1/harden", fmt.Sprintf(
						`{"network":{"name":"TreeFlat"},"spec":{"seed":%d},"options":{"generations":15,"seed":%d}}`, i, i))
					if err != nil {
						errs <- fmt.Errorf("job %d: %w", i, err)
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				return err
			}
			return nil
		}},
		{"metrics", func() error {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			for _, want := range []string{"rsn_serve_http_requests", "rsn_serve_cache_hits", "rsn_serve_job_ms_count", "rsn_proc_goroutines"} {
				if !strings.Contains(string(b), want) {
					return fmt.Errorf("exposition lacks %s:\n%s", want, b)
				}
			}
			return nil
		}},
		{"request id echo", func() error {
			req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
			if err != nil {
				return err
			}
			req.Header.Set("X-Request-Id", "selftest-rid-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if got := resp.Header.Get("X-Request-Id"); got != "selftest-rid-1" {
				return fmt.Errorf("X-Request-Id not echoed: got %q", got)
			}
			// And when absent, the server generates one.
			resp2, err := http.Get(base + "/healthz")
			if err != nil {
				return err
			}
			defer resp2.Body.Close()
			io.Copy(io.Discard, resp2.Body)
			if resp2.Header.Get("X-Request-Id") == "" {
				return fmt.Errorf("no generated X-Request-Id on response")
			}
			return nil
		}},
		{"streamed harden", func() error {
			req, err := http.NewRequest(http.MethodPost, base+"/v1/harden?stream=1", strings.NewReader(
				`{"network":{"name":"TreeFlat"},"spec":{"seed":3},
				  "options":{"generations":20,"seed":3,"no_cache":true,"stream_every":1}}`))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				return fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
				return fmt.Errorf("content type %q, want text/event-stream", ct)
			}
			lastTrace = traceID(resp.Header.Get("Traceparent"))
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			gens := strings.Count(string(b), "event: generation\n")
			results := strings.Count(string(b), "event: result\n")
			if gens < 1 || results != 1 {
				return fmt.Errorf("stream had %d generation and %d result events:\n%s", gens, results, b)
			}
			return nil
		}},
		{"jobs listing", func() error {
			resp, err := http.Get(base + "/v1/jobs")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			var jl struct {
				Recent []map[string]any `json:"recent"`
			}
			if err := json.Unmarshal(b, &jl); err != nil {
				return fmt.Errorf("bad JSON: %w (%s)", err, b)
			}
			if len(jl.Recent) == 0 {
				return fmt.Errorf("no recent jobs after the battery: %s", b)
			}
			return nil
		}},
		{"flight recorder", func() error {
			if lastTrace == "" {
				return fmt.Errorf("no trace ID captured from the streamed harden")
			}
			resp, err := http.Get(base + "/debug/flight?trace_id=" + lastTrace)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d: %s", resp.StatusCode, b)
			}
			var job struct {
				Spans []map[string]any `json:"spans"`
			}
			if err := json.Unmarshal(b, &job); err != nil {
				return fmt.Errorf("bad JSON: %w (%s)", err, b)
			}
			if len(job.Spans) == 0 {
				return fmt.Errorf("flight entry has no spans: %s", b)
			}
			return nil
		}},
	}
	for _, st := range steps {
		t0 := time.Now()
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		fmt.Printf("rsnserve: selftest %-20s ok (%v)\n", st.name, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// traceID extracts the trace-id field of a traceparent header value.
func traceID(tp string) string {
	parts := strings.Split(tp, "-")
	if len(parts) != 4 {
		return ""
	}
	return parts[1]
}

// postJSON posts body and returns the decoded 200 response.
func postJSON(url, body string) (map[string]any, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("bad JSON: %w (%s)", err, b)
	}
	return m, nil
}

func expectStatus(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func expectFields(m map[string]any, checks map[string]func(any) bool) error {
	for field, ok := range checks {
		if !ok(m[field]) {
			return fmt.Errorf("field %q has unexpected value %v", field, m[field])
		}
	}
	return nil
}
