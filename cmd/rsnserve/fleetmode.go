package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rsnrobust/internal/fleet"
)

// coordOptions carries the coordinator-mode flags from main.
type coordOptions struct {
	addr        string
	workers     []string
	probeIvl    time.Duration
	retryBudget int
	ckptEvery   int
	l1Cache     int
	affDelta    float64
	grace       time.Duration
	logger      *slog.Logger
}

// runCoordinator is the -coordinator main path: it fronts the given
// workers with the fleet dispatcher instead of running jobs locally.
// It prints the same "listening on" line as worker mode so wrappers
// and tests parse both identically, and drains the same way on
// SIGINT/SIGTERM: the listener closes, in-flight dispatches keep
// streaming until their workers finish or the grace period expires.
func runCoordinator(opt coordOptions) error {
	urls := make([]string, 0, len(opt.workers))
	for _, u := range opt.workers {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	coord, err := fleet.New(fleet.Config{
		Workers:           urls,
		ProbeInterval:     opt.probeIvl,
		RetryBudget:       opt.retryBudget,
		CheckpointEvery:   opt.ckptEvery,
		L1CacheEntries:    opt.l1Cache,
		AffinityLoadDelta: opt.affDelta,
		Logger:            opt.logger,
	})
	if err != nil {
		return err
	}
	coord.Start()
	defer coord.Close()

	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}

	fmt.Printf("rsnserve: listening on %s\n", ln.Addr())
	opt.logger.Info("coordinator listening", "addr", ln.Addr().String(), "workers", urls)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("rsnserve: %s, draining (grace %s)\n", sig, opt.grace)
		opt.logger.Info("coordinator draining", "signal", sig.String(), "grace", opt.grace.String())
	case err := <-errCh:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), opt.grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Grace expired with dispatches still streaming: cut them off.
		httpSrv.Close()
	}
	fmt.Println("rsnserve: drained")
	return nil
}
