package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"
)

var elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.e+-]+`)

func normalizeElapsed(b []byte) string {
	return elapsedRe.ReplaceAllString(string(b), `"elapsed_ms":0`)
}

// metricsSnap fetches a server's JSON metrics snapshot.
func metricsSnap(t *testing.T, base string) (map[string]int64, map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters, snap.Gauges
}

// TestCoordinatorKillWorkerMigration is the fleet's end-to-end chaos
// drill through real processes: two rsnserve workers and one
// coordinator run as separate OS processes, a job is dispatched, and
// the worker running it is SIGKILLed after it has streamed at least
// one checkpoint. The job must complete on the surviving worker with a
// response byte-identical (modulo wall clock) to an uninterrupted run,
// and the coordinator must account exactly one migration — zero lost
// work, zero duplicated work.
func TestCoordinatorKillWorkerMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	w1cmd, w1base, _ := startServer(t)
	_, w2base, _ := startServer(t)
	_, coordBase, coordErr := startServer(t,
		"-coordinator", w1base+","+w2base,
		"-probe-interval", "100ms",
		"-checkpoint-every", "1")

	// Wait for the coordinator's first probe sweep to see the workers.
	readyDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coordBase + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("coordinator never became ready\nstderr: %s", coordErr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Large enough that the SIGKILL lands mid-run with room to spare:
	// the kill fires as soon as worker 1 reports a streamed checkpoint,
	// within the first few of 600 generations.
	const body = `{"network":{"name":"TreeFlat"},"spec":{"seed":3},` +
		`"options":{"generations":600,"population":80,"seed":7}}`

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(coordBase+"/v1/harden", "application/json", strings.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b, err: err}
	}()

	// Worker 1 holds the job (both workers idle, registry order picks
	// it first). Kill it the moment it has streamed a checkpoint the
	// coordinator can resume from.
	killDeadline := time.Now().Add(30 * time.Second)
	for {
		counters, _ := metricsSnap(t, w1base)
		if counters["serve.checkpoints.streamed"] >= 1 {
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatal("worker 1 never streamed a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w1cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	w1cmd.Wait()

	var r result
	select {
	case r = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("job did not complete after worker kill")
	}
	if r.err != nil {
		t.Fatalf("request failed: %v\ncoordinator stderr: %s", r.err, coordErr.String())
	}
	if r.status != http.StatusOK {
		t.Fatalf("status = %d: %s\ncoordinator stderr: %s", r.status, r.body, coordErr.String())
	}
	var rep struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(r.body, &rep); err != nil {
		t.Fatalf("bad response JSON: %v (%s)", err, r.body)
	}
	if rep.Interrupted {
		t.Error("migrated run reported interrupted")
	}

	// Byte-identity against an uninterrupted run on a fresh worker.
	_, refBase, _ := startServer(t)
	refResp, err := http.Post(refBase+"/v1/harden", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer refResp.Body.Close()
	want, _ := io.ReadAll(refResp.Body)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference run failed: %s", want)
	}
	if normalizeElapsed(r.body) != normalizeElapsed(want) {
		t.Errorf("migrated result differs from uninterrupted run\n got %s\nwant %s", r.body, want)
	}

	counters, gauges := metricsSnap(t, coordBase)
	if counters["fleet.migrations"] < 1 {
		t.Errorf("fleet.migrations = %d, want >= 1", counters["fleet.migrations"])
	}
	if counters["fleet.dispatches"] != 2 {
		t.Errorf("fleet.dispatches = %d, want 2 (one per worker that held the job)", counters["fleet.dispatches"])
	}
	// The probe loop must have noticed the corpse by now.
	probeDeadline := time.Now().Add(5 * time.Second)
	for {
		_, gauges = metricsSnap(t, coordBase)
		if gauges["fleet.workers.healthy"] == 1 {
			break
		}
		if time.Now().After(probeDeadline) {
			t.Errorf("fleet.workers.healthy = %v, want 1 after worker death", gauges["fleet.workers.healthy"])
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The fleet status endpoint agrees.
	fresp, err := http.Get(coordBase + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var st struct {
		Healthy int `json:"healthy"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Healthy != 1 {
		t.Errorf("/v1/fleet healthy = %d, want 1", st.Healthy)
	}
}

// TestCoordinatorFlagConflict: -coordinator and -worker together must
// refuse to start.
func TestCoordinatorFlagConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(os.Args[0], "-coordinator", "http://127.0.0.1:1", "-worker", "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "RSNSERVE_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("process exited 0 with conflicting flags")
	}
	if !strings.Contains(string(out), "mutually exclusive") {
		t.Errorf("output lacks conflict message: %s", out)
	}
}
