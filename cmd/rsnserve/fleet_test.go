package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"

	"rsnrobust/internal/serve"
)

var elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.e+-]+`)

func normalizeElapsed(b []byte) string {
	return elapsedRe.ReplaceAllString(string(b), `"elapsed_ms":0`)
}

// metricsSnap fetches a server's JSON metrics snapshot.
func metricsSnap(t *testing.T, base string) (map[string]int64, map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters, snap.Gauges
}

// TestCoordinatorKillWorkerMigration is the fleet's end-to-end chaos
// drill through real processes: two rsnserve workers and one
// coordinator run as separate OS processes, a job is dispatched, and
// the worker running it is SIGKILLed after it has streamed at least
// one checkpoint. The job must complete on the surviving worker with a
// response byte-identical (modulo wall clock) to an uninterrupted run,
// the coordinator must account exactly one migration — zero lost work,
// zero duplicated work — and a repeat of the request must be served
// from the coordinator's L1 cache with zero re-evaluations.
func TestCoordinatorKillWorkerMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	w1cmd, w1base, _ := startServer(t)
	w2cmd, w2base, _ := startServer(t)
	_, coordBase, coordErr := startServer(t,
		"-coordinator", w1base+","+w2base,
		"-probe-interval", "100ms",
		"-checkpoint-every", "1")

	// Wait for the coordinator's first probe sweep to see the workers.
	readyDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(coordBase + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("coordinator never became ready\nstderr: %s", coordErr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Large enough that the SIGKILL lands mid-run with room to spare:
	// the kill fires as soon as worker 1 reports a streamed checkpoint,
	// within the first few of 600 generations.
	const body = `{"network":{"name":"TreeFlat"},"spec":{"seed":3},` +
		`"options":{"generations":600,"population":80,"seed":7}}`

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(coordBase+"/v1/harden", "application/json", strings.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: b, err: err}
	}()

	// Affinity routing sends the job to its cache key's rendezvous owner
	// — either worker, depending on the ephemeral ports — so poll both
	// and SIGKILL whichever is streaming checkpoints the moment the
	// coordinator has one to resume from.
	holders := []struct {
		cmd  *exec.Cmd
		base string
	}{{w1cmd, w1base}, {w2cmd, w2base}}
	killDeadline := time.Now().Add(30 * time.Second)
	killed := false
	for !killed {
		for _, h := range holders {
			counters, _ := metricsSnap(t, h.base)
			if counters["serve.checkpoints.streamed"] >= 1 {
				if err := h.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
					t.Fatal(err)
				}
				h.cmd.Wait()
				killed = true
				break
			}
		}
		if !killed {
			if time.Now().After(killDeadline) {
				t.Fatal("no worker ever streamed a checkpoint")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	var r result
	select {
	case r = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("job did not complete after worker kill")
	}
	if r.err != nil {
		t.Fatalf("request failed: %v\ncoordinator stderr: %s", r.err, coordErr.String())
	}
	if r.status != http.StatusOK {
		t.Fatalf("status = %d: %s\ncoordinator stderr: %s", r.status, r.body, coordErr.String())
	}
	var rep struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(r.body, &rep); err != nil {
		t.Fatalf("bad response JSON: %v (%s)", err, r.body)
	}
	if rep.Interrupted {
		t.Error("migrated run reported interrupted")
	}

	// Byte-identity against an uninterrupted run on a fresh worker.
	_, refBase, _ := startServer(t)
	refResp, err := http.Post(refBase+"/v1/harden", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer refResp.Body.Close()
	want, _ := io.ReadAll(refResp.Body)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference run failed: %s", want)
	}
	if normalizeElapsed(r.body) != normalizeElapsed(want) {
		t.Errorf("migrated result differs from uninterrupted run\n got %s\nwant %s", r.body, want)
	}

	counters, gauges := metricsSnap(t, coordBase)
	if counters["fleet.migrations"] < 1 {
		t.Errorf("fleet.migrations = %d, want >= 1", counters["fleet.migrations"])
	}
	if counters["fleet.dispatches"] != 2 {
		t.Errorf("fleet.dispatches = %d, want 2 (one per worker that held the job)", counters["fleet.dispatches"])
	}
	// The probe loop must have noticed the corpse by now.
	probeDeadline := time.Now().Add(5 * time.Second)
	for {
		_, gauges = metricsSnap(t, coordBase)
		if gauges["fleet.workers.healthy"] == 1 {
			break
		}
		if time.Now().After(probeDeadline) {
			t.Errorf("fleet.workers.healthy = %v, want 1 after worker death", gauges["fleet.workers.healthy"])
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The fleet status endpoint agrees.
	fresp, err := http.Get(coordBase + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var st struct {
		Healthy int `json:"healthy"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Healthy != 1 {
		t.Errorf("/v1/fleet healthy = %d, want 1", st.Healthy)
	}

	// The repeat drill: workers never cache resumed runs, so only the
	// coordinator's L1 holds the migrated job's result. A repeat must be
	// answered from it — marked cached, zero new dispatches, and
	// byte-identical to the first response modulo the cached flag and
	// wall clock — even though the owner has just resharded.
	rresp, err := http.Post(coordBase+"/v1/harden", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	rbody, _ := io.ReadAll(rresp.Body)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d: %s", rresp.StatusCode, rbody)
	}
	if key := rresp.Header.Get(serve.CacheKeyHeader); len(key) != 16 {
		t.Errorf("repeat %s = %q, want a 16-hex-digit key", serve.CacheKeyHeader, key)
	}
	if !strings.Contains(string(rbody), `"cached":true`) {
		t.Errorf("repeat after migration not served from the L1: %s", rbody)
	}
	uncache := func(s string) string { return strings.Replace(s, `"cached":true`, `"cached":false`, 1) }
	if uncache(normalizeElapsed(rbody)) != uncache(normalizeElapsed(r.body)) {
		t.Errorf("cached repeat differs from migrated result\n got %s\nwant %s", rbody, r.body)
	}
	counters, _ = metricsSnap(t, coordBase)
	if counters["fleet.cache.hits"] < 1 {
		t.Errorf("fleet.cache.hits = %d, want >= 1", counters["fleet.cache.hits"])
	}
	if counters["fleet.dispatches"] != 2 {
		t.Errorf("fleet.dispatches = %d after cached repeat, want still 2", counters["fleet.dispatches"])
	}
}

// TestCoordinatorFlagConflict: -coordinator and -worker together must
// refuse to start.
func TestCoordinatorFlagConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(os.Args[0], "-coordinator", "http://127.0.0.1:1", "-worker", "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "RSNSERVE_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("process exited 0 with conflicting flags")
	}
	if !strings.Contains(string(out), "mutually exclusive") {
		t.Errorf("output lacks conflict message: %s", out)
	}
}
