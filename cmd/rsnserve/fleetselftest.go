package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"time"

	"rsnrobust/internal/chaos"
	"rsnrobust/internal/fleet"
	"rsnrobust/internal/serve"
)

// selftestElapsedRe blanks the only nondeterministic response field so
// the migration step can compare fronts byte-for-byte.
var selftestElapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.e+-]+`)

// runFleetSelftest is the coordinator half of -selftest: two
// in-process workers behind a coordinator, with worker 1's network
// path scripted to die right after its first streamed checkpoint. The
// job must migrate to worker 2 and come back byte-identical to an
// uninterrupted run, and the coordinator's merged metrics must show
// the dispatch, the migration, and both workers healthy.
func runFleetSelftest() error {
	startWorker := func() (string, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		httpSrv := &http.Server{Handler: serve.New(serve.Config{Workers: 1}).Handler()}
		go httpSrv.Serve(ln)
		return "http://" + ln.Addr().String(), func() { httpSrv.Close() }, nil
	}
	w1, stop1, err := startWorker()
	if err != nil {
		return err
	}
	defer stop1()
	w2, stop2, err := startWorker()
	if err != nil {
		return err
	}
	defer stop2()

	// Requests 0 and 1 through the proxy are the dispatch sweep's
	// health probes; request 2 is the job itself, killed after the
	// first checkpoint event so the coordinator must migrate it.
	proxy, err := chaos.NewProxy(w1, []chaos.Fault{
		{}, {},
		{Kind: chaos.FaultKillAfterEvents, Event: "checkpoint", Events: 1},
	})
	if err != nil {
		return err
	}
	defer proxy.Close()

	coord, err := fleet.New(fleet.Config{
		Workers:       []string{proxy.URL(), w2},
		ProbeInterval: time.Hour, // probed on demand by the dispatch path
		RetryBudget:   3,
		BackoffBase:   10 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		// Affinity routing is off so the job deterministically lands on
		// the proxied worker (registry order), keeping the scripted fault
		// placement exact; the L1 cache stays on — the repeat step below
		// proves a migrated job's repeat is served without re-dispatch.
		AffinityLoadDelta: -1,
		Seed:              42,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	coordSrv := &http.Server{Handler: coord.Handler()}
	go coordSrv.Serve(ln)
	defer coordSrv.Close()
	base := "http://" + ln.Addr().String()

	const job = `{"network":{"name":"TreeFlat"},"spec":{"seed":3},` +
		`"options":{"generations":40,"population":30,"seed":7}}`

	// The migration step's response, kept for the cache-repeat step's
	// byte comparison.
	var firstResult []byte

	steps := []struct {
		name string
		fn   func() error
	}{
		{"fleet migration", func() error {
			resp, err := http.Post(base+"/v1/harden", "application/json", strings.NewReader(job))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			got, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d: %s", resp.StatusCode, got)
			}
			firstResult = got
			// The uninterrupted reference runs on a fresh worker so
			// neither cache nor resume state can mask a divergence.
			ref, stopRef, err := startWorker()
			if err != nil {
				return err
			}
			defer stopRef()
			refResp, err := http.Post(ref+"/v1/harden", "application/json", strings.NewReader(job))
			if err != nil {
				return err
			}
			defer refResp.Body.Close()
			want, _ := io.ReadAll(refResp.Body)
			norm := func(b []byte) string { return selftestElapsedRe.ReplaceAllString(string(b), `"elapsed_ms":0`) }
			if norm(got) != norm(want) {
				return fmt.Errorf("migrated result differs from uninterrupted run\n got %s\nwant %s", got, want)
			}
			if proxy.Killed() != 1 {
				return fmt.Errorf("proxy killed %d connections, want 1", proxy.Killed())
			}
			return nil
		}},
		{"fleet cache repeat", func() error {
			// Workers never cache resumed runs, so only the coordinator's
			// L1 can answer this repeat — with zero new dispatches (the
			// metrics step pins fleet.dispatches at 2).
			resp, err := http.Post(base+"/v1/harden", "application/json", strings.NewReader(job))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			got, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d: %s", resp.StatusCode, got)
			}
			if key := resp.Header.Get(serve.CacheKeyHeader); len(key) != 16 {
				return fmt.Errorf("%s = %q, want a 16-hex-digit key", serve.CacheKeyHeader, key)
			}
			if !strings.Contains(string(got), `"cached":true`) {
				return fmt.Errorf("repeat not served from the L1 cache: %s", got)
			}
			norm := func(b []byte) string {
				s := strings.Replace(string(b), `"cached":true`, `"cached":false`, 1)
				return selftestElapsedRe.ReplaceAllString(s, `"elapsed_ms":0`)
			}
			if norm(got) != norm(firstResult) {
				return fmt.Errorf("cached repeat differs from first result\n got %s\nwant %s", got, firstResult)
			}
			return nil
		}},
		{"fleet status", func() error {
			// The kill marked worker 1 unhealthy eagerly; its backend is
			// actually fine (the proxy killed one connection, not the
			// worker), so a probe sweep — manual here, periodic in
			// production — must restore it to the healthy set.
			coord.ProbeNow()
			resp, err := http.Get(base + "/v1/fleet")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			var st struct {
				Healthy int `json:"healthy"`
				Workers []struct {
					Breaker string `json:"breaker"`
				} `json:"workers"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				return err
			}
			if st.Healthy != 2 || len(st.Workers) != 2 {
				return fmt.Errorf("fleet status: %d healthy of %d workers, want 2 of 2", st.Healthy, len(st.Workers))
			}
			return nil
		}},
		{"fleet metrics", func() error {
			resp, err := http.Get(base + "/metrics?format=json")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			var snap struct {
				Counters map[string]int64   `json:"counters"`
				Gauges   map[string]float64 `json:"gauges"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				return err
			}
			if snap.Counters["fleet.migrations"] < 1 {
				return fmt.Errorf("fleet.migrations = %d, want >= 1", snap.Counters["fleet.migrations"])
			}
			if snap.Counters["fleet.dispatches"] != 2 {
				return fmt.Errorf("fleet.dispatches = %d, want 2 — the cached repeat must not have dispatched", snap.Counters["fleet.dispatches"])
			}
			if snap.Counters["fleet.cache.hits"] < 1 {
				return fmt.Errorf("fleet.cache.hits = %d, want >= 1", snap.Counters["fleet.cache.hits"])
			}
			if snap.Gauges["fleet.workers.healthy"] != 2 {
				return fmt.Errorf("fleet.workers.healthy = %v, want 2", snap.Gauges["fleet.workers.healthy"])
			}
			// The text exposition must merge fleet and process families.
			tresp, err := http.Get(base + "/metrics")
			if err != nil {
				return err
			}
			defer tresp.Body.Close()
			b, _ := io.ReadAll(tresp.Body)
			for _, want := range []string{"rsn_fleet_migrations", "rsn_fleet_workers_healthy", "rsn_proc_goroutines"} {
				if !strings.Contains(string(b), want) {
					return fmt.Errorf("exposition lacks %s:\n%s", want, b)
				}
			}
			return nil
		}},
	}
	for _, st := range steps {
		t0 := time.Now()
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		fmt.Printf("rsnserve: selftest %-20s ok (%v)\n", st.name, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
