package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles the test binary as the rsnserve binary: re-exec'd
// with RSNSERVE_BE_MAIN=1 it runs main() on its own flags, so the
// subprocess tests exercise the real signal path without a build step.
func TestMain(m *testing.M) {
	if os.Getenv("RSNSERVE_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// startServer launches rsnserve on a loopback port and returns the
// base URL parsed from its "listening on" line.
func startServer(t *testing.T, extraArgs ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RSNSERVE_BE_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "rsnserve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		t.Fatalf("no listening line on stdout\nstderr: %s", stderr.String())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)
	return cmd, "http://" + addr, &stderr
}

func waitExit(t *testing.T, cmd *exec.Cmd, stderr *bytes.Buffer) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rsnserve exited with %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("rsnserve did not exit within 30s of SIGTERM")
	}
}

// TestSIGTERMDrainIdle sends the real signal to an idle server: it
// must exit zero promptly.
func TestSIGTERMDrainIdle(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, base, stderr := startServer(t)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitExit(t, cmd, stderr)
}

// TestSIGTERMDrainInFlight is the end-to-end drain gate: SIGTERM lands
// while a long synthesis is running under a short grace period. The
// in-flight client must still get a 200 with a valid partial front and
// "interrupted": true, and the process must then exit zero.
func TestSIGTERMDrainInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, base, stderr := startServer(t, "-drain-grace", "500ms", "-workers", "2")

	type result struct {
		resp map[string]any
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/harden", "application/json",
			strings.NewReader(`{"network":{"name":"TreeBalanced"},"spec":{"seed":5},
			  "options":{"generations":100000,"seed":5}}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			done <- result{err: fmt.Errorf("status %d: %s", resp.StatusCode, b)}
			return
		}
		var m map[string]any
		done <- result{resp: m, err: json.Unmarshal(b, &m)}
	}()

	// Wait until the job occupies a worker before signalling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics?format=json")
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Gauges map[string]float64 `json:"gauges"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err == nil && snap.Gauges["serve.queue.running"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("synthesis never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", r.err)
		}
		if r.resp["interrupted"] != true {
			t.Errorf("drained response not marked interrupted: %v", r.resp)
		}
		if front, ok := r.resp["front"].([]any); !ok || len(front) == 0 {
			t.Errorf("drained response has no partial front: %v", r.resp["front"])
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request did not complete during drain")
	}
	waitExit(t, cmd, stderr)
}

// TestSelftestCLI runs the -selftest battery through the real binary.
func TestSelftestCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(os.Args[0], "-selftest")
	cmd.Env = append(os.Environ(), "RSNSERVE_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "selftest PASS") {
		t.Errorf("selftest output lacks PASS marker:\n%s", out)
	}
}
