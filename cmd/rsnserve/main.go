// Command rsnserve exposes the hardening pipeline as an HTTP service:
// POST /v1/analyze for the criticality analysis, POST /v1/harden for
// the full selective-hardening synthesis (add `Accept:
// text/event-stream` or ?stream=1 for live per-generation progress),
// plus /healthz, /readyz, /metrics, /v1/jobs and /debug/flight. See
// internal/serve for the API contract.
//
// Usage:
//
//	rsnserve -addr :8080 -workers 4 -queue 16
//	rsnserve -log-level debug -log-format text
//	rsnserve -selftest            # in-process smoke test, exits 0/1
//
// Fleet mode splits the service into workers and a coordinator:
//
//	rsnserve -worker -addr 127.0.0.1:9101
//	rsnserve -worker -addr 127.0.0.1:9102
//	rsnserve -coordinator http://127.0.0.1:9101,http://127.0.0.1:9102 -addr :8080
//
// The coordinator probes worker health, routes each job to the
// least-loaded healthy worker, retries transient failures with
// jittered backoff, and — because it asks workers to stream
// checkpoints — migrates a dead worker's job to another worker from
// its last checkpoint, bit-identically. See internal/fleet.
//
// Logs are structured (JSONL on stderr by default), every line
// correlated by the request's trace and request IDs.
//
// On SIGINT/SIGTERM the server drains gracefully: /readyz flips to 503
// and new jobs are rejected while in-flight requests keep running; when
// the grace period expires, the remaining syntheses are aborted
// cooperatively and return their partial fronts before the process
// exits. The drain also dumps the flight recorder — the last completed
// jobs with their span trees — to stderr as JSON, so a terminated pod
// leaves its black box in the log stream.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rsnrobust/internal/serve"
	"rsnrobust/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent synthesis jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 16, "admitted-but-waiting jobs beyond the running ones; beyond that requests get 429 (negative = no waiting room)")
		evalW     = flag.Int("eval-workers", 1, "objective-evaluation workers per job")
		cacheN    = flag.Int("cache", 256, "harden result cache entries (negative disables)")
		maxDdl    = flag.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines")
		maxGens   = flag.Int("max-generations", 100_000, "cap on requested generations")
		maxPop    = flag.Int("max-population", 5_000, "cap on requested population size")
		grace     = flag.Duration("drain-grace", 10*time.Second, "how long a drain waits before aborting in-flight jobs")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "json", "log format: json (one object per line) or text")
		flight    = flag.Int("flight", 128, "flight recorder capacity in completed jobs (negative disables; dumped on drain and served at /debug/flight)")
		selftest  = flag.Bool("selftest", false, "start the server on a loopback port, run a load-generating smoke test against it, and exit")

		coordinator = flag.String("coordinator", "", "run as fleet coordinator fronting these comma-separated worker URLs instead of serving jobs locally")
		workerMode  = flag.Bool("worker", false, "run as a fleet worker (the default serving mode; the flag just documents intent)")
		probeIvl    = flag.Duration("probe-interval", time.Second, "coordinator: worker health-probe period")
		retryBudget = flag.Int("retry-budget", 4, "coordinator: dispatch retries per job beyond the first attempt")
		ckptEvery   = flag.Int("checkpoint-every", 5, "coordinator: checkpoint cadence (generations) injected into dispatched jobs; negative disables migration checkpoints")
		l1Cache     = flag.Int("l1-cache", 256, "coordinator: completed-result L1 cache entries (negative disables)")
		affDelta    = flag.Float64("affinity-delta", 4, "coordinator: load headroom granted to a cache key's rendezvous-owner worker before falling back to least-loaded (negative disables affinity routing)")
	)
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, telemetry.ParseLogLevel(*logLevel), *logFormat)

	if *coordinator != "" {
		if *workerMode {
			fmt.Fprintln(os.Stderr, "rsnserve: -coordinator and -worker are mutually exclusive")
			os.Exit(1)
		}
		if err := runCoordinator(coordOptions{
			addr:        *addr,
			workers:     strings.Split(*coordinator, ","),
			probeIvl:    *probeIvl,
			retryBudget: *retryBudget,
			ckptEvery:   *ckptEvery,
			l1Cache:     *l1Cache,
			affDelta:    *affDelta,
			grace:       *grace,
			logger:      logger,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "rsnserve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		EvalWorkers:    *evalW,
		CacheEntries:   *cacheN,
		MaxDeadline:    *maxDdl,
		MaxGenerations: *maxGens,
		MaxPopulation:  *maxPop,
		Logger:         logger,
		FlightEntries:  *flight,
	})

	if *selftest {
		if err := runSelftest(srv); err != nil {
			fmt.Fprintf(os.Stderr, "rsnserve: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := runFleetSelftest(); err != nil {
			fmt.Fprintf(os.Stderr, "rsnserve: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("rsnserve: selftest PASS")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsnserve: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The printed address is the resolved one (":0" picks a port), so
	// wrappers and tests can parse where to connect.
	fmt.Printf("rsnserve: listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(), "workers", *workers, "queue", *queue)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("rsnserve: %s, draining (grace %s)\n", sig, *grace)
		logger.Info("draining", "signal", sig.String(), "grace", grace.String())
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "rsnserve: %v\n", err)
		os.Exit(1)
	}

	// Drain: stop admitting, let in-flight requests run for the grace
	// period, then abort the rest cooperatively — each returns its
	// partial front to its waiting client, so Shutdown's wait always
	// terminates shortly after the timer fires.
	srv.StartDrain()
	timer := time.AfterFunc(*grace, srv.AbortInFlight)
	defer timer.Stop()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "rsnserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	dumpFlight(srv, logger)
	fmt.Println("rsnserve: drained")
}

// dumpFlight writes the flight recorder's final snapshot to stderr as
// one JSON object — the process's black box, preserved in the log
// stream of a terminated instance.
func dumpFlight(srv *serve.Server, logger *slog.Logger) {
	fr := srv.Flight()
	if fr == nil {
		return
	}
	snap := fr.Snapshot()
	logger.Info("flight recorder dump", "recorded", snap.Recorded, "jobs", len(snap.Jobs), "dropped_spans", snap.DroppedSpans)
	enc := json.NewEncoder(os.Stderr)
	_ = enc.Encode(snap)
}
