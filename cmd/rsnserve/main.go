// Command rsnserve exposes the hardening pipeline as an HTTP service:
// POST /v1/analyze for the criticality analysis, POST /v1/harden for
// the full selective-hardening synthesis, plus /healthz, /readyz and
// /metrics. See internal/serve for the API contract.
//
// Usage:
//
//	rsnserve -addr :8080 -workers 4 -queue 16
//	rsnserve -selftest            # in-process smoke test, exits 0/1
//
// On SIGINT/SIGTERM the server drains gracefully: /readyz flips to 503
// and new jobs are rejected while in-flight requests keep running; when
// the grace period expires, the remaining syntheses are aborted
// cooperatively and return their partial fronts before the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsnrobust/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent synthesis jobs (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 16, "admitted-but-waiting jobs beyond the running ones; beyond that requests get 429 (negative = no waiting room)")
		evalW    = flag.Int("eval-workers", 1, "objective-evaluation workers per job")
		cacheN   = flag.Int("cache", 256, "harden result cache entries (negative disables)")
		maxDdl   = flag.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines")
		maxGens  = flag.Int("max-generations", 100_000, "cap on requested generations")
		maxPop   = flag.Int("max-population", 5_000, "cap on requested population size")
		grace    = flag.Duration("drain-grace", 10*time.Second, "how long a drain waits before aborting in-flight jobs")
		selftest = flag.Bool("selftest", false, "start the server on a loopback port, run a load-generating smoke test against it, and exit")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		EvalWorkers:    *evalW,
		CacheEntries:   *cacheN,
		MaxDeadline:    *maxDdl,
		MaxGenerations: *maxGens,
		MaxPopulation:  *maxPop,
	})

	if *selftest {
		if err := runSelftest(srv); err != nil {
			fmt.Fprintf(os.Stderr, "rsnserve: selftest FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("rsnserve: selftest PASS")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rsnserve: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The printed address is the resolved one (":0" picks a port), so
	// wrappers and tests can parse where to connect.
	fmt.Printf("rsnserve: listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("rsnserve: %s, draining (grace %s)\n", sig, *grace)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "rsnserve: %v\n", err)
		os.Exit(1)
	}

	// Drain: stop admitting, let in-flight requests run for the grace
	// period, then abort the rest cooperatively — each returns its
	// partial front to its waiting client, so Shutdown's wait always
	// terminates shortly after the timer fires.
	srv.StartDrain()
	timer := time.AfterFunc(*grace, srv.AbortInFlight)
	defer timer.Stop()
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "rsnserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("rsnserve: drained")
}
