// Command ftcompare contrasts the paper's selective hardening with the
// fault-TOLERANT RSN synthesis of its comparator [4] (internal/ftrsn):
// hardware overhead, topology preservation, pattern compatibility and
// residual damage, per benchmark.
//
// Usage:
//
//	ftcompare                        # default benchmark set
//	ftcompare -name p34392           # one benchmark
//	ftcompare -generations 500
package main

import (
	"flag"
	"fmt"
	"os"

	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/ftrsn"
	"rsnrobust/internal/report"
	"rsnrobust/internal/spec"
)

func main() {
	var (
		name = flag.String("name", "", "single benchmark (default: a representative set)")
		gens = flag.Int("generations", 300, "evolutionary budget for the selective side")
		seed = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	names := []string{"TreeFlat", "q12710", "TreeBalanced", "p34392", "t512505"}
	if *name != "" {
		names = []string{*name}
	}

	tb := report.New("design", "ft.muxes+", "ft.cost", "ft.SP", "ft.defpath", "ft.worst",
		"sel.cost", "sel.damage", "sel.max", "cost ratio")
	for _, nm := range names {
		net, err := benchnets.Generate(nm)
		if err != nil {
			fail(err)
		}
		sp, err := spec.Generate(net, spec.PaperGenOptions(*seed))
		if err != nil {
			fail(err)
		}

		ft, rep, err := ftrsn.Synthesize(net, spec.DefaultCostModel)
		if err != nil {
			fail(err)
		}
		ftsp := spec.FromNetwork(ft, spec.DefaultCostModel)
		worst, _ := ftrsn.WorstSingleFaultDamage(ft, ftsp)

		opt := core.DefaultOptions(*gens, *seed)
		opt.Analysis.Scope = faults.ScopeControl
		s, err := core.Synthesize(net, sp, opt)
		if err != nil {
			fail(err)
		}
		sol, ok := s.MinCostWithDamageAtMost(0.10)
		if !ok {
			sol = s.Front[len(s.Front)-1]
		}
		ratio := float64(rep.OverheadCost) / float64(sol.Cost)
		tb.Add(nm, rep.AddedMuxes, rep.OverheadCost, rep.SeriesParallel,
			fmt.Sprintf("%d->%d", rep.PathBitsBefore, rep.PathBitsAfter), worst,
			sol.Cost, sol.Damage, s.MaxDamage, fmt.Sprintf("%.1fx", ratio))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println("\nft.*: fault-tolerant synthesis [4] — added muxes, hardware overhead,")
	fmt.Println("      series-parallel preserved?, default path length change, worst")
	fmt.Println("      tolerated single-fault damage (at most one instrument).")
	fmt.Println("sel.*: selective hardening (this paper) — cheapest damage<=10% solution.")
	fmt.Println("cost ratio: FT overhead / selective hardening cost.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ftcompare:", err)
	os.Exit(1)
}
