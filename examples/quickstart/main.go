// Quickstart: build a small Reconfigurable Scan Network with the
// library API, run the criticality analysis, synthesize a robust
// (selectively hardened) version, and show that the fault of the
// paper's Fig. 4 is avoided on the hardened network.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"rsnrobust/internal/access"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/icl"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

func main() {
	// 1. Model: the running example of the paper's Fig. 1 (three scan
	// multiplexers m0..m2, instruments i1..i3; i3 is control-critical).
	net := fixture.PaperExample()
	if err := rsn.Validate(net); err != nil {
		log.Fatal(err)
	}
	st := net.Stats()
	fmt.Printf("network %q: %d segments, %d muxes, %d instruments\n",
		net.Name, st.Segments, st.Muxes, st.Instruments)

	// 2. Specification: the instrument damage weights were annotated on
	// the instruments themselves; derive the spec from them.
	sp := spec.FromNetwork(net, spec.DefaultCostModel)

	// 3. Synthesis: criticality analysis + SPEA-2 selective hardening.
	syn, err := core.Synthesize(net, sp, core.DefaultOptions(100, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max damage %d (nothing hardened), max cost %d (everything hardened)\n",
		syn.MaxDamage, syn.MaxCost)
	fmt.Printf("per-primitive damage d_j:\n")
	for _, id := range syn.Analysis.Prims {
		fmt.Printf("  %-4s d=%3d  cost=%2d  critical-hit=%v\n",
			net.Node(id).Name, syn.Analysis.Damage[id], sp.Cost[id], syn.Analysis.CritHit[id])
	}

	// 4. Pick the cheapest solution that keeps the residual damage at
	// 10% and apply it.
	sol, ok := syn.MinCostWithDamageAtMost(0.10)
	if !ok {
		log.Fatal("no front solution reaches damage <= 10%")
	}
	core.Apply(net, sol)
	fmt.Printf("hardened %d primitives (cost %d): %v\n",
		len(sol.Hardened), sol.Cost, net.SortedNames(sol.Hardened))

	// 5. The paper's Fig. 4 fault: m0 stuck-at-1 would make i1, i2, i3
	// inaccessible — on the hardened network it is avoided.
	sim := access.New(net, access.PolicyPaper)
	f := faults.Fault{Kind: faults.MuxStuck, Node: net.Lookup("m0"), Port: 1}
	if err := sim.InjectFault(f); err != nil {
		fmt.Printf("fault %s: %v\n", f.String(net), err)
	} else {
		fmt.Printf("fault %s injected — m0 was not hardened by this solution\n", f.String(net))
	}

	// 6. The hardened network still answers the same access patterns;
	// write it out in the textual ICL format.
	fmt.Println("\nhardened network in ICL format:")
	if err := icl.Write(os.Stdout, net); err != nil {
		log.Fatal(err)
	}
}
