// Post-silicon validation scenario (Section I of the paper): a defect
// in the RSN of an early silicon sample may prevent extracting the
// complete evaluation data from the embedded instruments.
//
// This example runs a single-fault injection campaign over a benchmark
// network and measures, by register-level simulation, how much of the
// instrument data remains extractable — first on the original network,
// then on the selectively hardened one. Hardening a small fraction of
// the primitives keeps almost all instruments readable under every
// single defect.
//
// Run with: go run ./examples/postsilicon
package main

import (
	"fmt"
	"log"

	"rsnrobust/internal/access"
	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

func main() {
	const benchmark = "q12710"
	net, err := benchnets.Generate(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := spec.Generate(net, spec.PaperGenOptions(7))
	if err != nil {
		log.Fatal(err)
	}
	instr := net.Instruments()
	fmt.Printf("benchmark %s: %d instruments, %d hardening candidates\n",
		benchmark, len(instr), len(net.Primitives()))

	baselineCoverage := coverage(net, instr)

	syn, err := core.Synthesize(net, sp, core.DefaultOptions(300, 7))
	if err != nil {
		log.Fatal(err)
	}
	sol, ok := syn.MinCostWithDamageAtMost(0.10)
	if !ok {
		log.Fatal("no solution with damage <= 10% on the front")
	}
	core.Apply(net, sol)
	fmt.Printf("hardened %d of %d primitives (%.1f%% of full hardening cost)\n",
		len(sol.Hardened), len(net.Primitives()), 100*float64(sol.Cost)/float64(syn.MaxCost))

	hardenedCoverage := coverage(net, instr)

	fmt.Printf("\n%-28s %10s %10s\n", "single-fault data extraction", "original", "hardened")
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "mean instrument coverage",
		100*baselineCoverage.mean, 100*hardenedCoverage.mean)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "worst-case coverage",
		100*baselineCoverage.worst, 100*hardenedCoverage.worst)
	fmt.Printf("%-28s %10d %10d\n", "faults with full extraction",
		baselineCoverage.full, hardenedCoverage.full)
	fmt.Printf("%-28s %10d %10d\n", "faults avoided by hardening",
		0, hardenedCoverage.avoided)
}

type campaign struct {
	mean, worst float64
	full        int
	avoided     int
}

// coverage injects every single fault and measures the fraction of
// instruments whose data can still be read out through the network.
func coverage(net *rsn.Network, instr []rsn.NodeID) campaign {
	var c campaign
	c.worst = 1
	universe := faults.Universe(net)
	var sum float64
	for _, f := range universe {
		if net.Node(f.Node).Hardened {
			// Hardening avoids the fault entirely: full extraction.
			c.avoided++
			c.full++
			sum += 1
			continue
		}
		readable := 0
		for _, seg := range instr {
			if obs, _ := access.Accessible(net, &f, seg, access.PolicyPaper); obs {
				readable++
			}
		}
		frac := float64(readable) / float64(len(instr))
		sum += frac
		if frac < c.worst {
			c.worst = frac
		}
		if readable == len(instr) {
			c.full++
		}
	}
	c.mean = sum / float64(len(universe))
	return c
}
