// Runtime-operation scenario (Section I of the paper): the device is
// guided by runtime-adaptive instruments — here an Adaptive Voltage and
// Frequency Scaling (AVFS) controller per core — whose *settability*
// through the RSN is critical: if a defect in the scan network makes an
// AVFS controller unreachable, the system can no longer adapt and
// eventually fails.
//
// The example builds a four-core SoC-style RSN where each core carries
// an AVFS target register (control-critical), a process monitor and a
// temperature sensor (observation-weighted, interchangeable). Selective
// hardening with ForceCritical guarantees that every AVFS register
// stays settable under EVERY single fault, verified by exhaustive
// fault-injected simulation.
//
// Run with: go run ./examples/avfs
package main

import (
	"fmt"
	"log"

	"rsnrobust/internal/access"
	"rsnrobust/internal/core"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/rsn"
	"rsnrobust/internal/spec"
)

const cores = 4

func buildSoC() *rsn.Network {
	b := rsn.NewBuilder("avfs-soc")
	for c := 0; c < cores; c++ {
		b.SIB(fmt.Sprintf("core%d", c), nil, func(sb *rsn.Builder) {
			// The AVFS target register: losing its settability may cause
			// a system failure, so ds is critical-high; reading it back
			// is merely convenient.
			sb.Segment(fmt.Sprintf("avfs%d", c), 8, &rsn.Instrument{
				Name:        fmt.Sprintf("avfs%d", c),
				DamageObs:   2,
				DamageSet:   1000,
				CriticalSet: true,
			})
			// Interchangeable sensors: low individual observation
			// weights, no settability requirement (Section IV-A).
			sb.SIB(fmt.Sprintf("mon%d", c), nil, func(mb *rsn.Builder) {
				mb.Segment(fmt.Sprintf("procmon%d", c), 12, &rsn.Instrument{
					Name: fmt.Sprintf("procmon%d", c), DamageObs: 3,
				})
				mb.Segment(fmt.Sprintf("tsense%d", c), 10, &rsn.Instrument{
					Name: fmt.Sprintf("tsense%d", c), DamageObs: 3,
				})
			})
		})
	}
	return b.Finish()
}

func main() {
	net := buildSoC()
	sp := spec.FromNetwork(net, spec.DefaultCostModel)

	opt := core.DefaultOptions(200, 3)
	opt.ForceCritical = true
	syn, err := core.Synthesize(net, sp, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SoC RSN: %d primitives, %d must be hardened to protect the AVFS registers\n",
		len(net.Primitives()), len(syn.Analysis.MustHarden()))

	sol, ok := syn.MinDamageWithCostAtMost(0.25)
	if !ok {
		sol = syn.Front[len(syn.Front)-1]
	}
	core.Apply(net, sol)
	fmt.Printf("applied solution: cost %d of %d, residual damage %d of %d, critical covered: %v\n",
		sol.Cost, syn.MaxCost, sol.Damage, syn.MaxDamage, sol.CriticalCovered)

	// Exhaustive verification by simulation: under every single fault,
	// every AVFS register must still accept a new operating point.
	universe := faults.Universe(net)
	violations, avoided := 0, 0
	for _, f := range universe {
		if net.Node(f.Node).Hardened {
			avoided++
			continue
		}
		for c := 0; c < cores; c++ {
			avfs := net.Lookup(fmt.Sprintf("avfs%d", c))
			if _, set := access.Accessible(net, &f, avfs, access.PolicyPaper); !set {
				violations++
				fmt.Printf("VIOLATION: %s not settable under %s\n",
					net.Node(avfs).Name, f.String(net))
			}
		}
	}
	fmt.Printf("fault campaign: %d single faults, %d avoided by hardening, %d AVFS violations\n",
		len(universe), avoided, violations)
	if violations == 0 {
		fmt.Println("all AVFS controllers remain settable under every single fault — runtime adaptation is safe")
	}

	// Demonstrate a live reconfiguration under a defect: break a sensor
	// segment and still retune core 0.
	sim := access.New(net, access.PolicyPaper)
	broken := net.Lookup("tsense0")
	if !net.Node(broken).Hardened {
		if err := sim.InjectFault(faults.Fault{Kind: faults.SegmentBreak, Node: broken}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\ninjected break(tsense0); retuning core 0 to a new operating point...")
	}
	if err := sim.WriteInstrument(net.Lookup("avfs0"), access.Bits(0xB7, 8)); err != nil {
		log.Fatalf("AVFS write failed: %v", err)
	}
	fmt.Println("avfs0 <= 0xB7: ok (defect routed around)")
}
