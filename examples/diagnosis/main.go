// Fault diagnosis scenario: a board returns from the field with a
// misbehaving scan network. The structural test suite generated for the
// original (fault-free) design is applied, the failing-test syndrome is
// collected, and the fault dictionary narrows the defect down to a
// handful of candidate primitives — the diagnosis flow of the paper's
// reference [17], demonstrated end to end on this library's simulator.
//
// Run with: go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"rsnrobust/internal/access"
	"rsnrobust/internal/faults"
	"rsnrobust/internal/fixture"
	"rsnrobust/internal/rsntest"
)

func main() {
	golden := fixture.NestedSIBs()
	suite, err := rsntest.Generate(golden, rsntest.Options{Scope: faults.ScopeAll, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test suite: %d tests, fault coverage %.0f%%\n",
		len(suite.Tests), 100*suite.Coverage())

	// The "field return": the same design with a defect nobody knows.
	hidden := faults.Fault{Kind: faults.MuxStuck, Node: golden.Node(golden.Lookup("childB")).Partner, Port: 0}
	fmt.Printf("(hidden defect: %s)\n", hidden.String(golden))

	syndrome := suite.Apply(func() *access.Simulator {
		sim := access.New(fixture.NestedSIBs(), access.PolicyStrict)
		if err := sim.InjectFault(hidden); err != nil {
			log.Fatal(err)
		}
		return sim
	})
	failing := 0
	for _, f := range syndrome {
		if f {
			failing++
		}
	}
	fmt.Printf("applied suite: %d of %d tests fail\n", failing, len(syndrome))

	candidates := suite.Diagnose(syndrome, faults.ScopeAll)
	fmt.Printf("diagnosis: %d candidate fault(s):\n", len(candidates))
	hit := false
	for _, c := range candidates {
		fmt.Printf("  %s\n", c.String(golden))
		if c == hidden {
			hit = true
		}
	}
	if hit {
		fmt.Println("the hidden defect is among the candidates — replace or harden that spot")
	}
}
