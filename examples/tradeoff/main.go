// Trade-off exploration (Section V of the paper): minimizing hardening
// cost and minimizing residual defect damage are conflicting goals, so
// the synthesis computes close-to-Pareto-optimal solution fronts.
//
// This example runs SPEA-2 and NSGA-II on the TreeBalanced benchmark,
// compares them with the greedy damage-per-cost heuristic and the exact
// knapsack front, plots all fronts as an ASCII chart (damage on Y, cost
// on X) and reports the hypervolume of each method.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"

	"rsnrobust/internal/baseline"
	"rsnrobust/internal/benchnets"
	"rsnrobust/internal/core"
	"rsnrobust/internal/moea"
	"rsnrobust/internal/report"
	"rsnrobust/internal/spec"
)

func main() {
	net, err := benchnets.Generate("TreeBalanced")
	if err != nil {
		log.Fatal(err)
	}
	sp, err := spec.Generate(net, spec.PaperGenOptions(11))
	if err != nil {
		log.Fatal(err)
	}

	spea, err := core.Synthesize(net, sp, core.DefaultOptions(1000, 11))
	if err != nil {
		log.Fatal(err)
	}
	optN := core.DefaultOptions(1000, 11)
	optN.Algorithm = core.AlgoNSGA2
	nsga, err := core.Synthesize(net, sp, optN)
	if err != nil {
		log.Fatal(err)
	}
	greedy := baseline.GreedyFront(spea.Analysis)
	exact := baseline.NewExact(spea.Analysis)

	maxC, maxD := float64(spea.MaxCost), float64(spea.MaxDamage)
	plot := report.NewAsciiFront(72, 24, maxC, maxD)
	for _, s := range greedy {
		plot.Plot(float64(s.Cost), float64(s.Damage), 'g')
	}
	for c := int64(0); c <= spea.MaxCost; c += spea.MaxCost / 72 {
		plot.Plot(float64(c), float64(exact.MinDamageWithCostAtMost(c)), 'e')
	}
	for _, s := range spea.Front {
		plot.Plot(float64(s.Cost), float64(s.Damage), 's')
	}
	for _, s := range nsga.Front {
		plot.Plot(float64(s.Cost), float64(s.Damage), 'n')
	}
	fmt.Printf("TreeBalanced trade-off fronts  (s=SPEA-2, n=NSGA-II, g=greedy, e=exact, *=overlap)\n")
	fmt.Printf("Y: residual damage 0..%d   X: hardening cost 0..%d\n\n", spea.MaxDamage, spea.MaxCost)
	if _, err := plot.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}

	ref := []float64{maxD * 1.01, maxC * 1.01}
	hv := func(front []core.Solution) float64 {
		inds := make([]moea.Individual, len(front))
		for i, s := range front {
			inds[i] = moea.Individual{Obj: []float64{float64(s.Damage), float64(s.Cost)}}
		}
		return moea.Hypervolume(inds, ref)
	}
	var exFront []moea.Individual
	for c := int64(0); c <= spea.MaxCost; c++ {
		exFront = append(exFront, moea.Individual{Obj: []float64{float64(exact.MinDamageWithCostAtMost(c)), float64(c)}})
	}
	exHV := moea.Hypervolume(moea.ParetoFilter(exFront), ref)

	fmt.Printf("\n%-8s %12s %16s %14s\n", "method", "front size", "hypervolume", "% of exact")
	for _, row := range []struct {
		name  string
		front []core.Solution
	}{
		{"spea2", spea.Front},
		{"nsga2", nsga.Front},
		{"greedy", greedy},
	} {
		v := hv(row.front)
		fmt.Printf("%-8s %12d %16.0f %13.1f%%\n", row.name, len(row.front), v, 100*v/exHV)
	}
	fmt.Printf("%-8s %12s %16.0f %14s\n", "exact", "-", exHV, "100.0%")

	fmt.Println("\nconstrained picks (paper Table I, columns 7-10):")
	if s, ok := spea.MinCostWithDamageAtMost(0.10); ok {
		fmt.Printf("  min cost with damage <= 10%%: cost %d, damage %d\n", s.Cost, s.Damage)
	}
	if s, ok := spea.MinDamageWithCostAtMost(0.10); ok {
		fmt.Printf("  min damage with cost <= 10%%: cost %d, damage %d\n", s.Cost, s.Damage)
	}
	cd, _ := exact.MinCostWithDamageAtMost(spea.MaxDamage / 10)
	fmt.Printf("  exact optimum for the same constraints: cost %d / damage %d\n",
		cd, exact.MinDamageWithCostAtMost(spea.MaxCost/10))
}
